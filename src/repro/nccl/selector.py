"""The NCCL baseline model: compiled schedules + size-based selection.

``NcclModel`` lazily compiles the NCCL-style schedules for a topology
and answers "how long would NCCL take" for a collective call of a given
size, applying NCCL's protocol/channel-count heuristics. Everything
runs through the same compiler and simulator as MSCCLang programs.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from ..core.compiler import CompilerOptions, compile_program
from ..core.ir import MscclIr
from ..runtime.simulator import IrSimulator, SimConfig, SimResult
from ..topology.model import Topology
from ..algorithms.alltoall_twostep import naive_alltoall
from .ring import (default_rings, nccl_ring_allreduce, select_instances,
                   select_protocol)


class NcclModel:
    """Simulated NCCL for one topology (AllReduce and AllToAll)."""

    def __init__(self, topology: Topology,
                 sim_config: Optional[SimConfig] = None):
        self.topology = topology
        self.sim_config = sim_config or SimConfig()
        self._ir_cache: Dict[Tuple[str, str, int], MscclIr] = {}

    # -- schedule construction ------------------------------------------
    def _compile(self, kind: str, protocol: str, instances: int) -> MscclIr:
        key = (kind, protocol, instances)
        ir = self._ir_cache.get(key)
        if ir is not None:
            return ir
        num_ranks = self.topology.num_ranks
        if kind == "allreduce_ring":
            machine = self.topology.machine
            rings = default_rings(
                self.topology.num_nodes, machine.gpus_per_node
            )
            program = nccl_ring_allreduce(
                num_ranks,
                gpus_per_node=machine.gpus_per_node,
                rings=rings,
                instances=instances,
                protocol=protocol,
            )
        elif kind == "alltoall":
            program = naive_alltoall(
                num_ranks, instances=instances, protocol=protocol,
                gpus_per_node=self.topology.machine.gpus_per_node,
            )
        else:
            raise ValueError(f"unknown NCCL schedule kind {kind!r}")
        options = CompilerOptions(
            max_threadblocks=self.topology.machine.sm_count
        )
        ir = compile_program(program, options)
        self._ir_cache[key] = ir
        return ir

    # -- timing queries -----------------------------------------------------
    def allreduce_time(self, buffer_bytes: float, *,
                       protocol: Optional[str] = None,
                       instances: Optional[int] = None) -> SimResult:
        """Simulated NCCL Ring AllReduce latency for a buffer size."""
        protocol = protocol or select_protocol(buffer_bytes)
        if instances is None:
            rings = default_rings(
                self.topology.num_nodes,
                self.topology.machine.gpus_per_node,
            )
            instances = select_instances(buffer_bytes, rings)
        ir = self._compile("allreduce_ring", protocol, instances)
        chunk_bytes = buffer_bytes / self.topology.num_ranks
        sim = IrSimulator(ir, self.topology, config=self.sim_config)
        return sim.run(chunk_bytes=chunk_bytes)

    def alltoall_time(self, buffer_bytes: float, *,
                      protocol: Optional[str] = None,
                      instances: int = 1) -> SimResult:
        """Simulated NCCL (point-to-point) AllToAll latency.

        ``buffer_bytes`` is the per-GPU input buffer (R blocks).
        """
        protocol = protocol or select_protocol(
            buffer_bytes / self.topology.num_ranks
        )
        ir = self._compile("alltoall", protocol, instances)
        chunk_bytes = buffer_bytes / self.topology.num_ranks
        sim = IrSimulator(ir, self.topology, config=self.sim_config)
        return sim.run(chunk_bytes=chunk_bytes)
