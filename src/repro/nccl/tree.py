"""NCCL-style Tree AllReduce baseline.

NCCL's second standard algorithm: reduce up a binary tree rooted at
rank 0, then broadcast the total back down. Latency scales with the
tree depth (log R) instead of the ring's 2R-2 hops, so NCCL prefers it
for small buffers on large rank counts. We build a single binary tree
over the whole buffer (NCCL uses a double tree; the second tree only
halves the bandwidth term, which whole-program instances model here).
"""

from __future__ import annotations

from typing import List, Optional

from ..core.collectives import AllReduce
from ..core.program import MSCCLProgram, chunk


def _children(rank: int, num_ranks: int) -> List[int]:
    kids = [2 * rank + 1, 2 * rank + 2]
    return [k for k in kids if k < num_ranks]


def nccl_tree_allreduce(num_ranks: int, *, instances: int = 2,
                        protocol: str = "LL",
                        name: Optional[str] = None) -> MSCCLProgram:
    """Reduce-to-root then broadcast over a binary tree."""
    collective = AllReduce(num_ranks, chunk_factor=1, in_place=True)
    label = name or f"nccl_tree_allreduce_r{instances}_{protocol.lower()}"
    with MSCCLProgram(label, collective, protocol=protocol,
                      instances=instances) as program:
        # Reduce phase: post-order so children accumulate before parents.
        order = sorted(range(num_ranks),
                       key=lambda r: -r.bit_length())
        for rank in order:
            for child in _children(rank, num_ranks):
                acc = chunk(rank, "in", 0)
                acc.reduce(chunk(child, "in", 0))
        # Broadcast phase: pre-order from the root.
        for rank in sorted(range(num_ranks), key=lambda r: r.bit_length()):
            for child in _children(rank, num_ranks):
                chunk(rank, "in", 0).copy(child, "in", 0)
    return program
