"""repro: a full reproduction of MSCCLang (ASPLOS 2023).

MSCCLang is a system for programmable GPU collective communication: a
chunk-oriented DSL embedded in Python, an optimizing compiler producing
deadlock-free MSCCL-IR, and an interpreter-based runtime. This package
implements all three, substituting a discrete-event cluster simulator
for the CUDA runtime so every experiment in the paper's evaluation runs
on a laptop. See DESIGN.md for the system inventory and EXPERIMENTS.md
for paper-versus-measured results.

Quick start::

    from repro.core import MSCCLProgram, AllReduce, chunk, compile_program
    from repro.runtime import IrSimulator, IrExecutor
    from repro.topology import ndv4

    coll = AllReduce(num_ranks=8, chunk_factor=8, in_place=True)
    with MSCCLProgram("my_allreduce", coll, protocol="LL") as prog:
        ...                       # chunk(...).copy/.reduce routing
    algo = compile_program(prog)  # CompiledAlgorithm: IR + collective
    IrExecutor(algo.ir, algo.collective).run_and_check()  # correctness
    IrSimulator(algo.ir, ndv4(1)).run(chunk_bytes=2**17)  # timing

End-to-end tracing (compiler passes + simulated instructions) lives in
:mod:`repro.observe`; see docs/observability.md and ``repro-tools
trace``.
"""

from . import (algorithms, analysis, baselines, build, core, nccl, observe,
               runtime, synth, topology)

__version__ = "1.1.0"

__all__ = [
    "algorithms",
    "analysis",
    "baselines",
    "build",
    "core",
    "nccl",
    "observe",
    "runtime",
    "synth",
    "topology",
    "__version__",
]
