"""Step-level IR construction, bypassing the DSL and compiler.

The DSL is the right tool when an algorithm is naturally expressed as
chunk routing, but interop work — porting a hand-written MSCCL XML
algorithm, prototyping a schedule the compiler would not emit, writing
a variable-size collective like alltoallv — wants direct control over
thread blocks, steps, channels, and dependencies. :class:`IrBuilder`
provides exactly the reference XML's level of abstraction as a fluent
Python API:

    from repro.build import IrBuilder
    from repro.core import AllToAllV

    b = IrBuilder("my_alltoallv", collective=AllToAllV(counts))
    g0 = b.gpu(0)
    tb = g0.threadblock(send=1, recv=2, chan=0)
    first = tb.send("input", 0, 2)
    tb.recv("output", 3, 1, depends=[first])
    ir = b.build()          # audited, postcondition-verified IR

Every op method appends one :class:`~repro.core.IrInstruction` to its
thread block and returns a :class:`StepRef` usable in later ``depends``
lists (also accepted: plain ``(tb_id, step)`` tuples). ``build()``
fills in the metadata the compiler would normally compute — receive
sequence tags in program order per connection, ``has_dep`` flags from
the dependency targets, deduced scratch sizes — then runs the same
validation the compile pipeline runs: the deadlock/payload audit
(:func:`~repro.core.audit_ir`) and, when a real collective is
attached, postcondition verification of the program's traced chunk
semantics. Structural misuse raises
:class:`~repro.core.errors.BuildError` naming the offending step.
"""

from __future__ import annotations

from typing import Dict, List, NamedTuple, Optional, Sequence, Tuple, Union

from ..core.buffers import Buffer, as_buffer
from ..core.collectives import Collective
from ..core.errors import BuildError, ProgramError, VerificationError
from ..core.instructions import Op, RECEIVING_OPS, SENDING_OPS
from ..core.interop import trace_ir
from ..core.ir import GpuProgram, IrInstruction, MscclIr, ThreadBlock
from ..core.verification import audit_ir


class StepRef(NamedTuple):
    """A (thread block, step) handle usable in ``depends`` lists."""

    tb_id: int
    step: int


DependsArg = Sequence[Union[StepRef, Tuple[int, int]]]


def _normalize_depends(depends: Optional[DependsArg],
                       where: str) -> List[Tuple[int, int]]:
    result: List[Tuple[int, int]] = []
    for dep in depends or ():
        try:
            tb_id, step = dep
            result.append((int(tb_id), int(step)))
        except (TypeError, ValueError):
            raise BuildError(
                f"{where}: depends entries must be StepRef or "
                f"(tb_id, step) tuples, got {dep!r}"
            ) from None
    return result


class ThreadBlockBuilder:
    """One thread block under construction: ordered steps, two peers."""

    def __init__(self, gpu: "GpuBuilder", tb_id: int,
                 send: Optional[int], recv: Optional[int], chan: int):
        self.gpu = gpu
        self.tb_id = tb_id
        self.send_peer = send
        self.recv_peer = recv
        self.channel = chan
        self.instructions: List[IrInstruction] = []

    # -- op plumbing ---------------------------------------------------
    def _where(self) -> str:
        return (f"gpu {self.gpu.rank} tb {self.tb_id} step "
                f"{len(self.instructions)}")

    def _span(self, buffer, offset: int, count: int,
              label: str) -> Tuple[Buffer, int, int]:
        where = self._where()
        try:
            buf = as_buffer(buffer)
        except ProgramError as exc:
            raise BuildError(f"{where}: {label} buffer: {exc}") from None
        if offset < 0 or count < 1:
            raise BuildError(
                f"{where}: {label} span {buf.value}[{offset}:"
                f"{offset + count}] needs a non-negative offset and a "
                "positive count"
            )
        return (buf, int(offset), int(count))

    def _append(self, op: Op, src, dst,
                depends: Optional[DependsArg],
                seq: Optional[int]) -> StepRef:
        where = self._where()
        if op in SENDING_OPS and self.send_peer is None:
            raise BuildError(
                f"{where}: op {op.value!r} sends, but this thread block "
                "declares no send peer (pass send=<rank> to "
                "threadblock())"
            )
        if op in RECEIVING_OPS and self.recv_peer is None:
            raise BuildError(
                f"{where}: op {op.value!r} receives, but this thread "
                "block declares no recv peer (pass recv=<rank> to "
                "threadblock())"
            )
        if seq is not None and op not in RECEIVING_OPS:
            raise BuildError(
                f"{where}: seq= only applies to receiving ops, not "
                f"{op.value!r}"
            )
        counts = [span[2] for span in (src, dst) if span is not None]
        instr = IrInstruction(
            step=len(self.instructions),
            op=op,
            src=src,
            dst=dst,
            count=max(counts) if counts else 1,
            depends=_normalize_depends(depends, where),
            recv_seq=seq,
        )
        self.instructions.append(instr)
        return StepRef(self.tb_id, instr.step)

    # -- the op set ----------------------------------------------------
    def send(self, buffer, offset: int, count: int = 1, *,
             depends: Optional[DependsArg] = None) -> StepRef:
        """Send ``count`` chunks of a local span to the send peer."""
        return self._append(
            Op.SEND, self._span(buffer, offset, count, "src"), None,
            depends, None)

    def recv(self, buffer, offset: int, count: int = 1, *,
             depends: Optional[DependsArg] = None,
             seq: Optional[int] = None) -> StepRef:
        """Receive ``count`` chunks from the recv peer into a span."""
        return self._append(
            Op.RECV, None, self._span(buffer, offset, count, "dst"),
            depends, seq)

    def copy(self, src_buffer, src_offset: int, dst_buffer,
             dst_offset: int, count: int = 1, *,
             depends: Optional[DependsArg] = None) -> StepRef:
        """Local copy of ``count`` chunks."""
        return self._append(
            Op.COPY,
            self._span(src_buffer, src_offset, count, "src"),
            self._span(dst_buffer, dst_offset, count, "dst"),
            depends, None)

    def reduce(self, src_buffer, src_offset: int, dst_buffer,
               dst_offset: int, count: int = 1, *,
               depends: Optional[DependsArg] = None) -> StepRef:
        """Local reduce: dst = dst (+) src."""
        return self._append(
            Op.REDUCE,
            self._span(src_buffer, src_offset, count, "src"),
            self._span(dst_buffer, dst_offset, count, "dst"),
            depends, None)

    def recv_reduce_copy(self, src_buffer, src_offset: int, dst_buffer,
                         dst_offset: int, count: int = 1, *,
                         depends: Optional[DependsArg] = None,
                         seq: Optional[int] = None) -> StepRef:
        """rrc: dst = src (+) incoming message."""
        return self._append(
            Op.RECV_REDUCE_COPY,
            self._span(src_buffer, src_offset, count, "src"),
            self._span(dst_buffer, dst_offset, count, "dst"),
            depends, seq)

    def recv_copy_send(self, buffer, offset: int, count: int = 1, *,
                       depends: Optional[DependsArg] = None,
                       seq: Optional[int] = None) -> StepRef:
        """rcs: store the incoming message locally and forward it."""
        return self._append(
            Op.RECV_COPY_SEND, None,
            self._span(buffer, offset, count, "dst"),
            depends, seq)

    def recv_reduce_copy_send(self, src_buffer, src_offset: int,
                              dst_buffer, dst_offset: int,
                              count: int = 1, *,
                              depends: Optional[DependsArg] = None,
                              seq: Optional[int] = None) -> StepRef:
        """rrcs: dst = src (+) incoming, and forward the result."""
        return self._append(
            Op.RECV_REDUCE_COPY_SEND,
            self._span(src_buffer, src_offset, count, "src"),
            self._span(dst_buffer, dst_offset, count, "dst"),
            depends, seq)

    def recv_reduce_send(self, buffer, offset: int, count: int = 1, *,
                         depends: Optional[DependsArg] = None,
                         seq: Optional[int] = None) -> StepRef:
        """rrs: forward src (+) incoming without a local store."""
        return self._append(
            Op.RECV_REDUCE_SEND,
            self._span(buffer, offset, count, "src"), None,
            depends, seq)

    def nop(self, *, depends: Optional[DependsArg] = None) -> StepRef:
        """A synchronization-only step carrying dependencies."""
        return self._append(Op.NOP, None, None, depends, None)

    # Short aliases matching the XML op codes.
    rrc = recv_reduce_copy
    rcs = recv_copy_send
    rrcs = recv_reduce_copy_send
    rrs = recv_reduce_send


class GpuBuilder:
    """One rank's program under construction."""

    def __init__(self, builder: "IrBuilder", rank: int,
                 input_chunks: int, output_chunks: int,
                 scratch_chunks: int):
        self.builder = builder
        self.rank = rank
        self.input_chunks = input_chunks
        self.output_chunks = output_chunks
        self.scratch_chunks = scratch_chunks
        self.threadblocks: List[ThreadBlockBuilder] = []
        self._connections: Dict[Tuple[str, int, int], int] = {}

    def threadblock(self, *, send: Optional[int] = None,
                    recv: Optional[int] = None,
                    chan: int = 0) -> ThreadBlockBuilder:
        """Add a thread block with at most one send and one recv peer.

        Each directed (peer, channel) connection may belong to only one
        thread block per gpu — the same constraint the scheduler and
        the MSCCL runtime enforce, since sharing one would make FIFO
        message ordering ambiguous.
        """
        tb_id = len(self.threadblocks)
        for kind, peer in (("send", send), ("recv", recv)):
            if peer is None:
                continue
            if not 0 <= peer < self.builder.num_ranks:
                raise BuildError(
                    f"gpu {self.rank} tb {tb_id}: {kind} peer {peer} is "
                    f"out of range for {self.builder.num_ranks} ranks"
                )
            if peer == self.rank:
                raise BuildError(
                    f"gpu {self.rank} tb {tb_id}: {kind} peer cannot be "
                    "the thread block's own rank"
                )
            key = (kind, peer, chan)
            other = self._connections.get(key)
            if other is not None:
                raise BuildError(
                    f"gpu {self.rank} tb {tb_id}: {kind} connection to "
                    f"rank {peer} on channel {chan} already belongs to "
                    f"tb {other}; use a different channel"
                )
            self._connections[key] = tb_id
        tb = ThreadBlockBuilder(self, tb_id, send, recv, chan)
        self.threadblocks.append(tb)
        return tb


class IrBuilder:
    """Construct MSCCL-IR at the step/thread-block level.

    ``collective`` may be a real :class:`~repro.core.Collective` (then
    per-rank buffer sizes default to its shapes, and ``build()``
    verifies the program's traced semantics against its postcondition)
    or ``None`` with an explicit ``num_ranks`` for free-form IRs.
    """

    def __init__(self, name: str,
                 collective: Optional[Collective] = None, *,
                 num_ranks: Optional[int] = None,
                 protocol: str = "Simple"):
        if collective is None and num_ranks is None:
            raise BuildError(
                "IrBuilder needs either a collective or num_ranks"
            )
        if collective is not None and num_ranks is not None \
                and collective.num_ranks != num_ranks:
            raise BuildError(
                f"num_ranks={num_ranks} contradicts the collective's "
                f"{collective.num_ranks} ranks"
            )
        self.name = name
        self.collective = collective
        self.num_ranks = (collective.num_ranks if collective is not None
                          else num_ranks)
        self.protocol = protocol
        self.in_place = bool(collective.in_place) if collective else False
        self._gpus: Dict[int, GpuBuilder] = {}

    def gpu(self, rank: int, *, input_chunks: Optional[int] = None,
            output_chunks: Optional[int] = None,
            scratch_chunks: int = 0) -> GpuBuilder:
        """Declare rank ``rank``'s program (sizes default from the
        collective; scratch grows automatically to cover use)."""
        if not 0 <= rank < self.num_ranks:
            raise BuildError(
                f"gpu rank {rank} out of range for {self.num_ranks} ranks"
            )
        if rank in self._gpus:
            raise BuildError(f"gpu {rank} declared twice")
        if input_chunks is None:
            if self.collective is None:
                raise BuildError(
                    f"gpu {rank}: input_chunks is required without a "
                    "collective"
                )
            input_chunks = (0 if self.in_place
                            else self.collective.input_chunks(rank))
        if output_chunks is None:
            if self.collective is None:
                raise BuildError(
                    f"gpu {rank}: output_chunks is required without a "
                    "collective"
                )
            output_chunks = self.collective.output_chunks(rank)
        gpu = GpuBuilder(self, rank, input_chunks, output_chunks,
                         scratch_chunks)
        self._gpus[rank] = gpu
        return gpu

    # -- assembly ------------------------------------------------------
    def build(self, *, validate: bool = True,
              num_slots: int = 8) -> MscclIr:
        """Assemble, fill in runtime metadata, and validate the IR.

        Computes receive sequence tags (program order per connection),
        ``has_dep`` flags, and deduced scratch sizes; with
        ``validate=True`` also runs the pipeline's deadlock/payload
        audit and — when a real collective is attached — verifies the
        traced chunk semantics against its postcondition.
        """
        missing = sorted(set(range(self.num_ranks)) - set(self._gpus))
        if missing:
            raise BuildError(
                f"cannot build '{self.name}': gpu(s) {missing} were "
                "never declared"
            )
        ir = MscclIr(
            name=self.name,
            collective=(self.collective.name if self.collective
                        else "custom"),
            protocol=self.protocol,
            num_ranks=self.num_ranks,
            in_place=self.in_place,
        )
        for rank in range(self.num_ranks):
            gb = self._gpus[rank]
            gpu = GpuProgram(
                rank=rank,
                input_chunks=gb.input_chunks,
                output_chunks=gb.output_chunks,
                scratch_chunks=gb.scratch_chunks,
            )
            for tbb in gb.threadblocks:
                tb = ThreadBlock(
                    tb_id=tbb.tb_id,
                    send_peer=tbb.send_peer,
                    recv_peer=tbb.recv_peer,
                    channel=tbb.channel,
                    instructions=[
                        IrInstruction(
                            step=i.step, op=i.op, src=i.src, dst=i.dst,
                            count=i.count, frac_lo=i.frac_lo,
                            frac_hi=i.frac_hi,
                            depends=list(i.depends),
                            recv_seq=i.recv_seq,
                            lineage=i.lineage,
                        )
                        for i in tbb.instructions
                    ],
                )
                gpu.threadblocks.append(tb)
            ir.gpus.append(gpu)

        self._grow_scratch(ir)
        self._validate_structure(ir)
        self._assign_recv_seqs(ir)
        self._assign_has_dep(ir)
        if validate:
            audit_ir(ir, num_slots=num_slots)
            if self.collective is not None:
                self._verify_postcondition(ir)
        return ir

    def check(self, elements_per_chunk: int = 48, *,
              num_slots: int = 8, **run_kwargs) -> MscclIr:
        """``build()`` plus a data-level executor run-and-check.

        Requires a real collective (the executor needs its pre/post
        conditions). Returns the validated IR.
        """
        if self.collective is None:
            raise BuildError(
                "check() needs a collective for data-level validation; "
                "build() the IR instead"
            )
        ir = self.build(num_slots=num_slots)
        from ..runtime.executor import IrExecutor
        IrExecutor(ir, self.collective,
                   elements_per_chunk=elements_per_chunk
                   ).run_and_check(**run_kwargs)
        return ir

    # -- metadata reconstruction ---------------------------------------
    @staticmethod
    def _grow_scratch(ir: MscclIr) -> None:
        for gpu in ir.gpus:
            high = gpu.scratch_chunks
            for tb in gpu.threadblocks:
                for instr in tb.instructions:
                    for span in (instr.src, instr.dst):
                        if span is not None and span[0] is Buffer.SCRATCH:
                            high = max(high, span[1] + span[2])
            gpu.scratch_chunks = high

    def _validate_structure(self, ir: MscclIr) -> None:
        for gpu in ir.gpus:
            steps = {
                (tb.tb_id, instr.step)
                for tb in gpu.threadblocks
                for instr in tb.instructions
            }
            for tb in gpu.threadblocks:
                for instr in tb.instructions:
                    where = (f"gpu {gpu.rank} tb {tb.tb_id} step "
                             f"{instr.step}")
                    for label, span in (("src", instr.src),
                                        ("dst", instr.dst)):
                        if span is None:
                            continue
                        buf, index, cnt = span
                        declared = gpu.buffer_chunks(buf)
                        if index + cnt > declared:
                            raise BuildError(
                                f"{where}: {label} span "
                                f"{buf.value}[{index}:{index + cnt}] "
                                f"exceeds the declared {buf.value} size "
                                f"of {declared} chunk(s)"
                            )
                    for dep in instr.depends:
                        if tuple(dep) not in steps:
                            raise BuildError(
                                f"{where}: depends on (tb {dep[0]}, "
                                f"step {dep[1]}), which does not exist "
                                f"on gpu {gpu.rank}"
                            )
                        if dep[0] == tb.tb_id:
                            raise BuildError(
                                f"{where}: depends on its own thread "
                                "block; same-thread-block ordering is "
                                "implicit in program order"
                            )

    @staticmethod
    def _assign_recv_seqs(ir: MscclIr) -> None:
        by_conn: Dict[Tuple[int, int, int], List[IrInstruction]] = {}
        for gpu in ir.gpus:
            for tb in gpu.threadblocks:
                for instr in tb.instructions:
                    if instr.op in RECEIVING_OPS:
                        conn = (tb.recv_peer, gpu.rank, tb.channel)
                        by_conn.setdefault(conn, []).append(instr)
        for conn, instrs in by_conn.items():
            tagged = [i for i in instrs if i.recv_seq is not None]
            if len(tagged) == len(instrs):
                continue
            if tagged:
                src, dst, ch = conn
                raise BuildError(
                    f"connection {src}->{dst} ch{ch} mixes explicit "
                    "seq= receives with untagged ones; tag all or none"
                )
            for seq, instr in enumerate(instrs):
                instr.recv_seq = seq

    @staticmethod
    def _assign_has_dep(ir: MscclIr) -> None:
        for gpu in ir.gpus:
            targets = {
                tuple(dep)
                for tb in gpu.threadblocks
                for instr in tb.instructions
                for dep in instr.depends
            }
            for tb in gpu.threadblocks:
                for instr in tb.instructions:
                    instr.has_dep = (tb.tb_id, instr.step) in targets

    def _verify_postcondition(self, ir: MscclIr) -> None:
        """The IR-level equivalent of the pipeline's check_postcondition."""
        outputs = trace_ir(ir, self.collective)
        failures: List[str] = []
        for rank in range(self.collective.num_ranks):
            expected = self.collective.postcondition(rank)
            actual = outputs.get(rank, {})
            for index, want in sorted(expected.items()):
                got = actual.get(index)
                if got != want:
                    failures.append(
                        f"rank {rank} output[{index}]: expected "
                        f"{want!r}, got {got!r}"
                    )
        if failures:
            preview = "\n  ".join(failures[:10])
            more = (f"\n  ... and {len(failures) - 10} more"
                    if len(failures) > 10 else "")
            raise VerificationError(
                f"program '{self.name}' does not implement "
                f"{self.collective.name}:\n  {preview}{more}"
            )
