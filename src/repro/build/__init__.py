"""Step-level IR construction (see :mod:`repro.build.builder`).

The builder API authors MSCCL-IR directly — explicit thread blocks,
steps, channels, and cross-thread-block dependencies — bypassing the
chunk DSL while keeping the pipeline's validation (``audit_ir`` plus
postcondition verification when a collective is attached). It is the
programmatic twin of the reference XML dialect accepted by
:mod:`repro.core.interop`.
"""

from .builder import GpuBuilder, IrBuilder, StepRef, ThreadBlockBuilder

__all__ = [
    "GpuBuilder",
    "IrBuilder",
    "StepRef",
    "ThreadBlockBuilder",
]
