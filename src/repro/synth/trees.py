"""Spanning-tree packing: synthesize collectives from a link graph.

For each data source the synthesizer grows a broadcast tree over the
topology's links, preferring wide links and spreading load so different
sources' trees use different edges (the load-balancing idea behind
Blink's tree packing). The trees become an MSCCLang program — every
tree level is a wave of ``copy`` operations — which the ordinary
compiler verifies and schedules. On switch-based machines any tree
works; on the DGX-1 cube mesh the synthesizer routes around missing
links and exploits double-width pairs.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..core.collectives import AllGather, Broadcast
from ..core.program import MSCCLProgram, chunk
from ..topology.model import Topology

# A tree as parent links: child rank -> parent rank (root maps to None).
Tree = Dict[int, Optional[int]]


def _edge_capacity(topology: Topology, a: int, b: int) -> float:
    """Relative capacity of a link (uses explicit widths if available)."""
    width = getattr(topology, "link_width", None)
    if width is not None:
        return float(width(a, b))
    # Switch-based topologies: all pairs reachable at port bandwidth.
    return 1.0


def _neighbors(topology: Topology, rank: int) -> List[int]:
    neighbors = getattr(topology, "neighbors", None)
    if neighbors is not None:
        return neighbors(rank)
    return [r for r in range(topology.num_ranks) if r != rank]


def broadcast_tree(topology: Topology, root: int,
                   load: Dict[Tuple[int, int], float]) -> Tree:
    """Grow one root's tree, penalizing already-loaded edges.

    A Prim-style growth: repeatedly attach the unattached rank whose
    connecting edge has the best (capacity / (1 + load)) score, which
    spreads different roots' trees across the link set.
    """
    tree: Tree = {root: None}
    frontier: List[Tuple[float, int, int, int]] = []
    counter = 0

    def push_edges(rank: int) -> None:
        nonlocal counter
        for neighbor in _neighbors(topology, rank):
            if neighbor in tree:
                continue
            capacity = _edge_capacity(topology, rank, neighbor)
            if capacity <= 0:
                continue
            penalty = load.get((rank, neighbor), 0.0)
            score = -(capacity / (1.0 + penalty))
            heapq.heappush(frontier, (score, counter, rank, neighbor))
            counter += 1

    push_edges(root)
    while len(tree) < topology.num_ranks:
        if not frontier:
            raise ValueError(
                f"topology is disconnected: cannot reach all ranks "
                f"from {root}"
            )
        _score, _seq, parent, child = heapq.heappop(frontier)
        if child in tree:
            continue
        tree[child] = parent
        load[(parent, child)] = load.get((parent, child), 0.0) + 1.0
        push_edges(child)
    return tree


def _tree_levels(tree: Tree) -> List[List[Tuple[int, int]]]:
    """(parent, child) edges grouped by depth, shallow first."""
    depth: Dict[int, int] = {}
    for node, parent in tree.items():
        if parent is None:
            depth[node] = 0
    changed = True
    while changed:
        changed = False
        for node, parent in tree.items():
            if node in depth or parent not in depth:
                continue
            depth[node] = depth[parent] + 1
            changed = True
    levels: List[List[Tuple[int, int]]] = []
    for node, parent in tree.items():
        if parent is None:
            continue
        level = depth[node] - 1
        while len(levels) <= level:
            levels.append([])
        levels[level].append((parent, node))
    return levels


@dataclass
class SynthesisResult:
    """A synthesized program plus the trees that shaped it."""

    program: MSCCLProgram
    trees: Dict[int, Tree]
    edge_load: Dict[Tuple[int, int], float] = field(default_factory=dict)

    def max_edge_load(self) -> float:
        return max(self.edge_load.values(), default=0.0)


def synthesize_allgather(topology: Topology, *, instances: int = 1,
                         protocol: str = "Simple",
                         name: Optional[str] = None) -> SynthesisResult:
    """Pack one broadcast tree per source rank into an AllGather."""
    num_ranks = topology.num_ranks
    collective = AllGather(num_ranks, chunk_factor=1, in_place=True)
    label = name or f"synth_allgather_{num_ranks}_r{instances}"
    load: Dict[Tuple[int, int], float] = {}
    trees = {
        root: broadcast_tree(topology, root, load)
        for root in range(num_ranks)
    }
    with MSCCLProgram(label, collective, protocol=protocol,
                      instances=instances) as program:
        for root, tree in trees.items():
            for level in _tree_levels(tree):
                for parent, child in level:
                    chunk(parent, "out", root).copy(child, "out", root)
    return SynthesisResult(program=program, trees=trees, edge_load=load)


def synthesize_broadcast(topology: Topology, *, root: int = 0,
                         chunk_factor: int = 1, instances: int = 1,
                         protocol: str = "Simple",
                         name: Optional[str] = None) -> SynthesisResult:
    """A single topology-aware broadcast tree."""
    collective = Broadcast(topology.num_ranks,
                           chunk_factor=chunk_factor, root=root)
    label = name or f"synth_broadcast_{topology.num_ranks}_r{instances}"
    load: Dict[Tuple[int, int], float] = {}
    tree = broadcast_tree(topology, root, load)
    with MSCCLProgram(label, collective, protocol=protocol,
                      instances=instances) as program:
        for index in range(chunk_factor):
            chunk(root, "in", index).copy(root, "out", index)
            for level in _tree_levels(tree):
                for parent, child in level:
                    chunk(parent, "out", index).copy(
                        child, "out", index
                    )
    return SynthesisResult(program=program, trees={root: tree},
                           edge_load=load)
