"""Topology-aware algorithm synthesis.

The paper positions MSCCLang as the *implementation* layer for the
algorithm synthesizers it cites (SCCL, Blink): they decide routes, the
DSL turns routes into runnable schedules. This package closes the loop
with a small synthesizer of its own: given any topology with explicit
link widths, it packs per-chunk spanning trees into an AllGather /
Broadcast program, which then flows through the ordinary MSCCLang
compiler, verifier, and simulator.
"""

from .trees import (
    SynthesisResult,
    broadcast_tree,
    synthesize_allgather,
    synthesize_broadcast,
)

__all__ = [
    "SynthesisResult",
    "broadcast_tree",
    "synthesize_allgather",
    "synthesize_broadcast",
]
