"""Exporters: Chrome-trace JSON and a plain-text flame summary.

:func:`chrome_trace` renders a tracer into the Trace Event Format that
``chrome://tracing`` / Perfetto load directly: one complete ``"X"``
event per span, ``"M"`` metadata events naming each process/thread
track, and ``"C"`` counter events from the tracer's samples. The
simulator's tracks carry explicit numeric ids, so pid maps to the GPU
rank and tid to the thread block.

:func:`flame_text` is the terminal-friendly view of the same data: the
span tree aggregated by path, with bars scaled to the root's total.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from .tracer import Span, Tracer

# Auto-assigned track ids start high so they never collide with GPU
# ranks (which use their own rank number as pid).
_AUTO_BASE = 1000


class _TrackIds:
    """Deterministic label -> integer id assignment for trace tracks."""

    def __init__(self) -> None:
        self._pids: Dict[str, int] = {}
        self._tids: Dict[Tuple[str, str], int] = {}

    def resolve(self, span: Span) -> Tuple[int, int]:
        process, thread = span.track
        if span.track_ids is not None:
            pid, tid = span.track_ids
            self._pids.setdefault(process, pid)
            self._tids.setdefault((process, thread), tid)
            return pid, tid
        if process not in self._pids:
            self._pids[process] = _AUTO_BASE + len(self._pids)
        key = (process, thread)
        if key not in self._tids:
            self._tids[key] = len([
                k for k in self._tids if k[0] == process
            ])
        return self._pids[process], self._tids[key]

    def metadata_events(self) -> List[dict]:
        events = []
        for process, pid in sorted(self._pids.items(), key=lambda kv: kv[1]):
            events.append({
                "name": "process_name", "ph": "M", "pid": pid, "tid": 0,
                "args": {"name": process},
            })
        for (process, thread), tid in sorted(self._tids.items(),
                                             key=lambda kv: kv[1]):
            pid = self._pids[process]
            events.append({
                "name": "thread_name", "ph": "M", "pid": pid, "tid": tid,
                "args": {"name": thread},
            })
        return events


def _jsonable(value):
    if isinstance(value, (bool, int, float, str)) or value is None:
        return value
    return str(value)


def chrome_trace(tracer: Tracer) -> dict:
    """The tracer as a Chrome Trace Event Format document (a dict)."""
    tracks = _TrackIds()
    events: List[dict] = []
    for span in tracer.walk():
        pid, tid = tracks.resolve(span)
        events.append({
            "name": span.name,
            "cat": span.cat or "span",
            "ph": "X",
            "ts": round(span.start_us, 3),
            "dur": round(span.duration_us, 3),
            "pid": pid,
            "tid": tid,
            "args": {k: _jsonable(v) for k, v in span.args.items()},
        })
    for sample in tracer.counter_samples:
        events.append({
            "name": sample.name,
            "cat": "counter",
            "ph": "C",
            "ts": round(sample.t_us, 3),
            "pid": 0,
            "tid": 0,
            "args": {"value": round(sample.value, 3)},
        })
    return {
        "traceEvents": tracks.metadata_events() + events,
        "displayTimeUnit": "ms",
    }


def write_chrome_trace(path: Union[str, Path], tracer: Tracer) -> Path:
    """Serialize :func:`chrome_trace` to a file; returns the path."""
    path = Path(path)
    path.write_text(json.dumps(chrome_trace(tracer), default=str))
    return path


def flame_text(tracer: Tracer, width: int = 40,
               max_depth: Optional[int] = None) -> str:
    """Flamegraph-style text: span paths aggregated, bars to scale.

    Sibling spans with the same name merge (count shown), so the
    simulator's thousands of per-instruction spans collapse into one
    row per opcode under their parent.
    """
    lines: List[str] = []

    def render(spans: List[Span], depth: int, scale: float) -> None:
        if max_depth is not None and depth > max_depth:
            return
        merged: Dict[str, Dict] = {}
        for span in spans:
            row = merged.setdefault(span.name, {
                "total": 0.0, "count": 0, "children": [],
            })
            row["total"] += span.duration_us
            row["count"] += 1
            row["children"].extend(span.children)
        for name, row in sorted(merged.items(),
                                key=lambda kv: -kv[1]["total"]):
            bar = "#" * max(1, int(row["total"] * scale)) if scale else ""
            count = f" x{row['count']}" if row["count"] > 1 else ""
            lines.append(
                f"{'  ' * depth}{name:<{max(1, 24 - 2 * depth)}s} "
                f"{row['total']:>10.1f}us{count:<8s} {bar}"
            )
            render(row["children"], depth + 1, scale)

    total = sum(root.duration_us for root in tracer.roots)
    scale = width / total if total > 0 else 0.0
    render(tracer.roots, 0, scale)
    return "\n".join(lines)
