"""Span-based tracing: the core of the observability layer.

A :class:`Tracer` records two kinds of data:

* **Spans** — named, nested intervals with free-form ``args``. The
  compiler opens wall-clock spans around its passes (via the
  :meth:`Tracer.span` context manager); the simulator emits
  virtual-time spans for every executed instruction occurrence (via
  :meth:`Tracer.emit`, which takes explicit start/end times).
* **Counters** — monotone accumulators sampled over time (FIFO stalls,
  semaphore waits, per-link busy time). Each :meth:`Tracer.add_counter`
  call bumps the running total and appends a timestamped sample, so
  exporters can draw counter tracks, not just report totals.

Spans carry a ``track`` — a ``(process, thread)`` label pair that
exporters map to Chrome's pid/tid. The simulator labels tracks
``("rank R", "tb T")`` with numeric ids ``(R, T)`` so trace viewers
group timelines exactly like the hardware would.

One tracer may span several phases (compile *and* simulate) — that is
the intended usage for end-to-end traces: pass the same instance to
:class:`~repro.core.compiler.CompilerOptions` and
:class:`~repro.runtime.simulator.SimConfig`.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Dict, Iterator, List, Optional, Tuple

Track = Tuple[str, str]

DEFAULT_TRACK: Track = ("main", "main")


class Span:
    """One named interval with nested children.

    Times are microseconds in the tracer's own domain: wall-clock
    microseconds since tracer creation for compiler spans, virtual
    simulated microseconds for runtime spans. ``args`` holds structured
    attributes (pass statistics, rank/tb/step coordinates, ...).
    """

    __slots__ = ("name", "cat", "start_us", "end_us", "track",
                 "track_ids", "args", "children")

    def __init__(self, name: str, start_us: float, *, cat: str = "",
                 track: Track = DEFAULT_TRACK,
                 track_ids: Optional[Tuple[int, int]] = None,
                 args: Optional[Dict] = None):
        self.name = name
        self.cat = cat
        self.start_us = start_us
        self.end_us: Optional[float] = None
        self.track = track
        self.track_ids = track_ids
        self.args: Dict = args or {}
        self.children: List[Span] = []

    @property
    def duration_us(self) -> float:
        if self.end_us is None:
            return 0.0
        return self.end_us - self.start_us

    def walk(self) -> Iterator["Span"]:
        """Depth-first over this span and its descendants."""
        yield self
        for child in self.children:
            yield from child.walk()

    def find(self, name: str) -> Optional["Span"]:
        """First descendant (or self) with the given name."""
        for span in self.walk():
            if span.name == name:
                return span
        return None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = (f"{self.duration_us:.1f}us" if self.end_us is not None
                 else "open")
        return f"Span({self.name!r}, {state}, children={len(self.children)})"


class CounterSample:
    """One timestamped observation of a counter's running total."""

    __slots__ = ("name", "t_us", "value")

    def __init__(self, name: str, t_us: float, value: float):
        self.name = name
        self.t_us = t_us
        self.value = value


class Tracer:
    """Collects spans and counters; feed it to the exporters.

    ``clock`` returns the current time in microseconds; the default is
    wall-clock time relative to tracer creation. Virtual-time producers
    (the simulator) bypass the clock entirely by calling :meth:`emit`
    with explicit timestamps.
    """

    def __init__(self, clock=None):
        if clock is None:
            epoch = time.perf_counter()
            clock = lambda: (time.perf_counter() - epoch) * 1e6  # noqa: E731
        self._clock = clock
        self.roots: List[Span] = []
        self._stack: List[Span] = []
        self.counters: Dict[str, float] = {}
        self.counter_samples: List[CounterSample] = []

    # -- clocked spans (compiler side) ----------------------------------
    @contextmanager
    def span(self, name: str, *, cat: str = "",
             track: Track = DEFAULT_TRACK, **args):
        """Open a nested span around a block; yields the Span so the
        block can attach result statistics to ``span.args``."""
        opened = Span(name, self._clock(), cat=cat, track=track, args=args)
        self._attach(opened)
        self._stack.append(opened)
        try:
            yield opened
        finally:
            self._stack.pop()
            opened.end_us = self._clock()

    # -- explicit-time spans (simulator side) ---------------------------
    def emit(self, name: str, start_us: float, end_us: float, *,
             cat: str = "", track: Track = DEFAULT_TRACK,
             track_ids: Optional[Tuple[int, int]] = None,
             parent: Optional[Span] = None, **args) -> Span:
        """Record an already-finished span with explicit timestamps."""
        span = Span(name, start_us, cat=cat, track=track,
                    track_ids=track_ids, args=args)
        span.end_us = end_us
        if parent is not None:
            parent.children.append(span)
        else:
            self._attach(span)
        return span

    def _attach(self, span: Span) -> None:
        if self._stack:
            self._stack[-1].children.append(span)
        else:
            self.roots.append(span)

    # -- counters --------------------------------------------------------
    def add_counter(self, name: str, delta: float,
                    t_us: Optional[float] = None) -> float:
        """Accumulate into a named counter; returns the new total."""
        total = self.counters.get(name, 0.0) + delta
        self.counters[name] = total
        self.counter_samples.append(CounterSample(
            name, self._clock() if t_us is None else t_us, total
        ))
        return total

    # -- queries ---------------------------------------------------------
    def walk(self) -> Iterator[Span]:
        """Depth-first over every recorded span."""
        for root in self.roots:
            yield from root.walk()

    def spans(self, cat: Optional[str] = None) -> List[Span]:
        """All (finished or open) spans, optionally filtered by category."""
        return [s for s in self.walk() if cat is None or s.cat == cat]

    def summary(self) -> Dict[str, Dict[str, float]]:
        """Aggregate totals per span name: count and total microseconds."""
        rows: Dict[str, Dict[str, float]] = {}
        for span in self.walk():
            row = rows.setdefault(span.name, {"count": 0, "total_us": 0.0})
            row["count"] += 1
            row["total_us"] += span.duration_us
        return rows


@contextmanager
def maybe_span(tracer: Optional[Tracer], name: str, **kwargs):
    """``tracer.span`` when a tracer is present, else a no-op context.

    Lets instrumented passes stay tracer-optional without branching at
    every call site. Yields the Span or None.
    """
    if tracer is None:
        yield None
    else:
        with tracer.span(name, **kwargs) as span:
            yield span
