"""Structured metrics distilled from a tracer (and a sim result).

:func:`metrics_dict` is the machine-readable companion of the Chrome
trace: counter totals, per-span-name aggregates, and per-link occupancy
in one plain dict (JSON-safe), consumable by ``analysis/report.py`` or
any dashboard. :func:`metrics_text` renders it for terminals.
"""

from __future__ import annotations

from typing import Dict, Optional

from .tracer import Tracer


def compile_cache_stats() -> Dict[str, float]:
    """Hit/miss counters of the process-wide compile cache.

    Includes the persistent disk tier's hit/miss/eviction counters and
    footprint under a ``"disk"`` sub-dict when the tier is attached.

    Lazy import: ``repro.core`` imports ``repro.observe.tracer``, so
    the cache module cannot be a top-level dependency here.
    """
    from ..core.cache import default_compile_cache

    return default_compile_cache().stats()


def worker_pool_stats() -> Dict:
    """Counters from the :mod:`repro.analysis.parallel` worker pools.

    Lazy import for the same layering reason as
    :func:`compile_cache_stats`; empty when the parallel layer was
    never used (or is unavailable).
    """
    try:
        from ..analysis.parallel import pool_stats
    except ImportError:  # pragma: no cover - analysis layer absent
        return {}
    return pool_stats()


def plan_service_stats() -> Dict:
    """Counters from the :mod:`repro.serve` plan service.

    Request/hit/in-flight-dedup/promotion totals for the process-wide
    service counters; empty when no service handled a request. Lazy
    import for the same layering reason as the other sections.
    """
    try:
        from ..serve.stats import serve_stats
    except ImportError:  # pragma: no cover - serve layer absent
        return {}
    return serve_stats()


def metrics_dict(tracer: Tracer, result=None) -> Dict:
    """Counters, span aggregates, and link occupancy as one dict.

    ``result`` (a :class:`~repro.runtime.simulator.SimResult`) adds the
    ``links`` section: per-resource busy time and occupancy — busy
    share of the whole execution — sampled from the event loop's FCFS
    bandwidth resources. Idle links appear with ``busy_us: 0`` so a
    dashboard can tell "unused" from "missing"; occupancy is clamped to
    1.0 (cut-through streaming can book overlapping reservations) and
    ``saturated: true`` flags any link that hit the clamp.
    """
    spans: Dict[str, Dict[str, float]] = {}
    for name, row in tracer.summary().items():
        spans[name] = {
            "count": int(row["count"]),
            "total_us": round(row["total_us"], 3),
        }
    metrics: Dict = {
        "counters": {
            name: round(value, 3)
            for name, value in sorted(tracer.counters.items())
        },
        "spans": spans,
        "compile_cache": compile_cache_stats(),
    }
    workers = worker_pool_stats()
    if workers.get("tasks"):
        metrics["workers"] = workers
    serve = plan_service_stats()
    if serve.get("requests"):
        metrics["serve"] = serve
    if result is not None:
        elapsed = result.time_us
        links = {}
        for name, busy in sorted(result.resource_busy_us.items()):
            raw = busy / elapsed if elapsed else 0.0
            links[name] = {
                "busy_us": round(max(busy, 0.0), 3),
                "occupancy": round(min(max(raw, 0.0), 1.0), 4),
            }
            if raw > 1.0:
                links[name]["saturated"] = True
        metrics["links"] = links
        metrics["sim"] = {
            "time_us": round(elapsed, 3),
            "instructions": result.instruction_count,
            "threadblocks": result.threadblocks,
            "tiles": result.tiles,
            "protocol": result.protocol,
        }
    return metrics


def metrics_text(metrics: Dict, top_links: Optional[int] = 8) -> str:
    """Terminal rendering of a :func:`metrics_dict` result."""
    lines = []
    sim = metrics.get("sim")
    if sim:
        lines.append(
            f"simulated {sim['instructions']} instructions on "
            f"{sim['threadblocks']} thread blocks in "
            f"{sim['time_us']:.1f}us ({sim['protocol']}, "
            f"{sim['tiles']} tiles)"
        )
    counters = metrics.get("counters", {})
    if counters:
        lines.append("counters:")
        for name, value in counters.items():
            lines.append(f"  {name:<32s} {value:>12.1f}")
    cache = metrics.get("compile_cache")
    if cache and (cache.get("hits") or cache.get("misses")):
        lines.append(
            f"compile cache: {cache['hits']} hit(s), "
            f"{cache['misses']} miss(es) "
            f"({cache['hit_rate']:.0%} hit rate, "
            f"{cache['entries']} cached)"
        )
        disk = cache.get("disk")
        if disk and (disk.get("hits") or disk.get("misses")):
            lines.append(
                f"  disk tier: {disk['hits']} hit(s), "
                f"{disk['misses']} miss(es), "
                f"{disk['evictions']} eviction(s), "
                f"{disk['entries']} file(s) / {disk['bytes']} bytes"
            )
    workers = metrics.get("workers")
    if workers:
        lines.append(
            f"worker pool: {workers['tasks']} task(s) over "
            f"{workers['pools']} pool(s), up to {workers['max_jobs']} "
            f"job(s), {workers['utilization']:.0%} busy"
        )
    serve = metrics.get("serve")
    if serve:
        lines.append(
            f"plan service: {serve['requests']} request(s), "
            f"{serve['plan_hits']} table hit(s) "
            f"({serve['hit_rate']:.0%}), "
            f"{serve['dedup_inflight']} deduplicated in flight, "
            f"{serve['promotions']} promotion(s)"
        )
    links = metrics.get("links", {})
    if links:
        ranked = sorted(links.items(), key=lambda kv: -kv[1]["occupancy"])
        if top_links is not None:
            ranked = ranked[:top_links]
        lines.append("busiest links:")
        for name, row in ranked:
            lines.append(
                f"  {name:<24s} {row['busy_us']:>10.1f}us busy "
                f"({row['occupancy']:.0%} occupied)"
            )
    return "\n".join(lines)
