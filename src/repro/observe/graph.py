"""The execution graph: happens-before edges under the span stream.

The simulator (with tracing enabled) records one :class:`ExecNode` per
executed instruction occurrence, tiled into :class:`Segment`s that
partition the node's wall-clock interval by what the thread block was
doing (fixed overhead, copy-engine compute, wire streaming, bandwidth
queueing) or what it was blocked on (semaphore wait, FIFO arrival, slot
back-pressure). Wait segments carry the *cause*: the node whose
completion released them. Explicit :class:`Edge`s record the
dependency structure (FIFO producer->consumer, semaphore signal->wait,
slot free->reuse); same-thread-block program order is implicit in node
keys and available via :meth:`ExecutionGraph.iter_program_edges`.

:meth:`ExecutionGraph.critical_path` walks backwards from the
last-finishing instruction, at every blocked interval jumping to the
blocking node, and emits a chain of :class:`PathStep`s that exactly
partitions ``[0, elapsed]`` — so per-category attribution sums to the
simulated time by construction, unlike the top-k span heuristic it
replaces.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

# (rank, tb, tile, step) — identifies one executed instruction occurrence.
NodeKey = Tuple[int, int, int, int]

# Segment/step kinds that mean "blocked, waiting on another node".
WAIT_KINDS = frozenset({"sem_wait", "fifo_stall", "slot_wait"})

# Every category a PathStep / attribution bucket can carry.
CATEGORIES = (
    "compute", "link", "queue", "fifo_stall", "sem_wait", "slot_wait",
    "overhead", "launch",
)

_EPS = 1e-9


class Segment:
    """One homogeneous sub-interval of an ExecNode's execution."""

    __slots__ = ("kind", "start_us", "end_us", "cause", "detail")

    def __init__(self, kind: str, start_us: float, end_us: float,
                 cause: Optional[NodeKey] = None,
                 detail: Optional[dict] = None):
        self.kind = kind
        self.start_us = start_us
        self.end_us = end_us
        self.cause = cause
        self.detail = detail

    @property
    def duration_us(self) -> float:
        return self.end_us - self.start_us

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Segment({self.kind}, "
                f"[{self.start_us:.3f}..{self.end_us:.3f}))")


class ExecNode:
    """One executed instruction occurrence with its segment tiling."""

    __slots__ = ("key", "op", "channel", "nbytes", "start_us", "end_us",
                 "segments", "lineage")

    def __init__(self, key: NodeKey, op: str, channel: int, nbytes: float,
                 start_us: float, end_us: float,
                 segments: List[Segment], lineage: frozenset):
        self.key = key
        self.op = op
        self.channel = channel
        self.nbytes = nbytes
        self.start_us = start_us
        self.end_us = end_us
        self.segments = segments
        self.lineage = lineage

    @property
    def rank(self) -> int:
        return self.key[0]

    @property
    def tb(self) -> int:
        return self.key[1]

    @property
    def tile(self) -> int:
        return self.key[2]

    @property
    def step(self) -> int:
        return self.key[3]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"ExecNode(r{self.rank}/tb{self.tb} tile{self.tile} "
                f"step{self.step} {self.op} "
                f"[{self.start_us:.3f}..{self.end_us:.3f}))")


@dataclass(frozen=True)
class Edge:
    """One recorded happens-before edge between two nodes."""

    kind: str  # "fifo" | "sem" | "slot"
    src: Optional[NodeKey]
    dst: NodeKey
    t_us: float  # when the edge was observed (dst's wake / consume time)


@dataclass
class PathStep:
    """One interval of the critical path, attributed to a category."""

    kind: str
    start_us: float
    end_us: float
    node: Optional[NodeKey] = None  # owning instruction, if any
    label: str = ""  # e.g. "r0->r1 ch0" for transfer intervals

    @property
    def duration_us(self) -> float:
        return self.end_us - self.start_us


@dataclass
class ExecutionGraph:
    """All nodes, edges, and the derived critical path of one run."""

    nodes: Dict[NodeKey, ExecNode] = field(default_factory=dict)
    edges: List[Edge] = field(default_factory=list)
    elapsed_us: float = 0.0  # total reported time (launch included)
    launch_us: float = 0.0  # kernel launch overhead portion
    _steps_per_tb: Dict[Tuple[int, int], int] = field(default_factory=dict)
    _path: Optional[List[PathStep]] = field(default=None, repr=False)
    # How many times the path crossed each edge kind (plus program order).
    crossings: Dict[str, int] = field(default_factory=dict)

    @property
    def core_elapsed_us(self) -> float:
        """Simulated time excluding the kernel launch overhead."""
        return self.elapsed_us - self.launch_us

    def add_node(self, node: ExecNode) -> None:
        self.nodes[node.key] = node
        tb_key = (node.key[0], node.key[1])
        self._steps_per_tb[tb_key] = max(
            self._steps_per_tb.get(tb_key, 0), node.key[3] + 1
        )
        self._path = None

    def finalize(self, elapsed_us: float, launch_us: float) -> None:
        self.elapsed_us = elapsed_us
        self.launch_us = launch_us
        self._path = None

    # -- parity fingerprints -----------------------------------------------
    def node_fingerprints(self) -> Dict[NodeKey, tuple]:
        """Per-node structural digests (op, timing, segment tiling).

        Two recordings of the same instruction occurrence agree on its
        fingerprint iff they recorded the same op, payload, interval,
        and segment breakdown — including each segment's cause node and
        message-detail dict.
        """
        return {
            key: (
                node.op, node.channel, node.nbytes, node.start_us,
                node.end_us,
                tuple(_segment_fingerprint(seg)
                      for seg in node.segments or ()),
                node.lineage,
            )
            for key, node in self.nodes.items()
        }

    def fingerprint(self) -> tuple:
        """A structural digest of the whole recorded execution.

        Two traced runs agree on this tuple iff they recorded the same
        nodes (with identical segment tilings), the same edge set with
        the same timestamps, and the same finalize totals — the bitwise
        equality contract the batched simulator engine's parity suite
        asserts against the reference event loop. Edges are compared as
        a canonically ordered set because the two engines may append
        them in different relative orders across thread blocks (heap
        tie-breaks) while recording identical graphs.
        """
        return (
            tuple(sorted(self.node_fingerprints().items())),
            tuple(sorted(
                ((edge.kind, edge.src, edge.dst, edge.t_us)
                 for edge in self.edges),
                key=_edge_sort_key,
            )),
            self.elapsed_us,
            self.launch_us,
        )

    # -- structure queries -------------------------------------------------
    def iter_program_edges(self) -> Iterator[Tuple[NodeKey, NodeKey]]:
        """Same-thread-block program-order edges (implicit in keys)."""
        for key in self.nodes:
            pred = self._program_pred(key)
            if pred is not None:
                yield (pred, key)

    def _program_pred(self, key: NodeKey) -> Optional[NodeKey]:
        rank, tb, tile, step = key
        if step > 0:
            pred = (rank, tb, tile, step - 1)
        elif tile > 0:
            pred = (rank, tb, tile - 1,
                    self._steps_per_tb.get((rank, tb), 1) - 1)
        else:
            return None
        return pred if pred in self.nodes else None

    # -- critical path -----------------------------------------------------
    def critical_path(self) -> List[PathStep]:
        """The dependency chain ending at the last-finishing node.

        The returned steps are in time order and exactly partition
        ``[0, elapsed_us]``: summing their durations reproduces the
        simulated time, and summing per ``kind`` gives the bottleneck
        attribution.
        """
        if self._path is not None:
            return self._path
        steps: List[PathStep] = []
        crossings = {"fifo": 0, "sem": 0, "slot": 0, "program": 0}
        if self.nodes:
            node = max(self.nodes.values(),
                       key=lambda n: (n.end_us, n.key))
            self._walk(node, steps, crossings)
        if self.launch_us > _EPS:
            steps.append(PathStep("launch", self.core_elapsed_us,
                                  self.elapsed_us, None, "kernel launch"))
        steps.sort(key=lambda s: (s.start_us, s.end_us))
        self.crossings = crossings
        self._path = steps
        return steps

    def _walk(self, node: ExecNode, steps: List[PathStep],
              crossings: Dict[str, int]) -> None:
        emit = steps.append
        T = node.end_us
        # Each iteration either emits a step ending at T (and lowers T)
        # or hops to another node at the same T; hops follow acyclic
        # happens-before edges, so the guard is belt and braces.
        guard = 10 * len(self.nodes) + 1000
        while T > _EPS and node is not None and guard > 0:
            guard -= 1
            seg = self._segment_before(node, T)
            if seg is None:
                if T > node.start_us + _EPS:
                    # Interval not covered by any segment (e.g. all
                    # overheads configured to zero): charge the node.
                    emit(PathStep("overhead", node.start_us, T, node.key))
                    T = node.start_us
                    continue
                pred_key = self._program_pred(node.key)
                if pred_key is None:
                    break
                crossings["program"] += 1
                node = self.nodes[pred_key]
                continue
            if seg.end_us < T - _EPS:
                # Gap between the last segment and T: charge the node.
                emit(PathStep("overhead", seg.end_us, T, node.key))
                T = seg.end_us
                continue
            lo = seg.start_us
            if seg.kind not in WAIT_KINDS:
                if T - lo > _EPS:
                    label = (seg.detail or {}).get("label", "")
                    emit(PathStep(seg.kind, lo, T, node.key, label))
                T = lo
                continue
            cause = (self.nodes.get(seg.cause)
                     if seg.cause is not None else None)
            if cause is None:
                # Cause outside the graph (should not happen): keep the
                # wait attributed to this node so the partition holds.
                if T - lo > _EPS:
                    emit(PathStep(seg.kind, lo, T, node.key))
                T = lo
                continue
            if seg.kind == "fifo_stall":
                T, node = self._cross_fifo(seg, cause, node, T, emit,
                                           crossings)
            else:
                # sem_wait / slot_wait: the wait ended the instant the
                # cause released it, so the whole blocked interval is
                # inside the cause's own execution — enter it there.
                anchor = min(T, cause.end_us)
                if T - anchor > _EPS:
                    emit(PathStep(seg.kind, anchor, T, node.key))
                crossings["sem" if seg.kind == "sem_wait" else "slot"] += 1
                T, node = anchor, cause

        if T > _EPS:
            # Residual before the earliest reachable node (defensive).
            emit(PathStep("overhead", 0.0, T, None))

    def _cross_fifo(self, seg: Segment, cause: ExecNode, node: ExecNode,
                    T: float, emit, crossings: Dict[str, int]):
        """Attribute a blocked-on-FIFO-arrival interval.

        The message left the producer at ``stream_start``; the interval
        from there to the wake-up splits into bandwidth-cap queueing,
        wire serialization (+ alpha), and a residual FIFO stall
        (in-order delivery clamping / producer gating). The walk then
        continues inside the producer at ``stream_start``.
        """
        msg = seg.detail or {}
        anchor = msg.get("stream_start")
        label = msg.get("label", "")
        crossings["fifo"] += 1
        if anchor is None or anchor >= T - _EPS:
            # No transfer detail, or we entered the wait below the
            # message's departure: hop into the producer at T.
            anchor = min(T, cause.end_us)
            if T - anchor > _EPS:
                emit(PathStep("fifo_stall", anchor, T, node.key, label))
            return anchor, cause
        total = T - anchor
        link_t = min(msg.get("wire_us", 0.0) + msg.get("alpha", 0.0),
                     total)
        queue_t = min(msg.get("queue_us", 0.0), total - link_t)
        stall_t = total - link_t - queue_t
        t = anchor
        for kind, dur in (("queue", queue_t), ("link", link_t),
                          ("fifo_stall", stall_t)):
            if dur > _EPS:
                emit(PathStep(kind, t, t + dur, node.key, label))
                t += dur
        return anchor, cause

    def _segment_before(self, node: ExecNode,
                        T: float) -> Optional[Segment]:
        """The latest segment of ``node`` starting strictly before T."""
        for seg in reversed(node.segments):
            if seg.start_us < T - _EPS:
                return seg
        return None

    # -- attribution -------------------------------------------------------
    def attribution(self) -> Dict[str, float]:
        """Per-category time over the critical path; sums to elapsed."""
        totals = {kind: 0.0 for kind in CATEGORIES}
        for step in self.critical_path():
            totals[step.kind] = totals.get(step.kind, 0.0) \
                + step.duration_us
        return totals

    def path_total_us(self) -> float:
        """Total attributed time (equals ``elapsed_us`` up to epsilon)."""
        return sum(step.duration_us for step in self.critical_path())


def _segment_fingerprint(seg: Segment) -> tuple:
    """Hash-/compare-friendly view of one segment (for parity checks)."""
    detail = seg.detail
    return (
        seg.kind, seg.start_us, seg.end_us, seg.cause,
        None if detail is None else tuple(sorted(detail.items())),
    )


def _edge_sort_key(edge_tuple: tuple) -> tuple:
    """Total order over edge tuples; ``src`` may be ``None``."""
    kind, src, dst, t_us = edge_tuple
    return (kind, src if src is not None else (), dst, t_us)
