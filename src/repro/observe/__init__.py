"""repro.observe: spans, counters, and exporters for the whole stack.

The observability layer behind the paper's "compile, run, inspect,
retune" loop. One :class:`Tracer` can follow an algorithm end to end:

    from repro.observe import Tracer, write_chrome_trace

    tracer = Tracer()
    algo = compile_program(program, CompilerOptions(trace=tracer))
    result = IrSimulator(algo.ir, topo,
                         config=SimConfig(tracer=tracer)).run(chunk_bytes)
    write_chrome_trace("trace.json", tracer)   # chrome://tracing

Compiler passes appear as wall-clock spans with before/after node
counts; every simulated instruction occurrence is a virtual-time span
on a ("rank R", "tb T") track; FIFO stalls and semaphore waits are
counters sampled from the event loop. See docs/observability.md.
"""

from .diagnose import (
    Diagnosis,
    JourneyHop,
    chunk_journey,
    diagnose,
    diagnose_text,
    diagnosis_dict,
    journey_text,
)
from .export import chrome_trace, flame_text, write_chrome_trace
from .graph import Edge, ExecNode, ExecutionGraph, PathStep, Segment
from .metrics import (compile_cache_stats, metrics_dict, metrics_text,
                      plan_service_stats, worker_pool_stats)
from .tracer import CounterSample, Span, Tracer, maybe_span

__all__ = [
    "CounterSample",
    "Diagnosis",
    "Edge",
    "ExecNode",
    "ExecutionGraph",
    "JourneyHop",
    "PathStep",
    "Segment",
    "Span",
    "Tracer",
    "chrome_trace",
    "chunk_journey",
    "compile_cache_stats",
    "diagnose",
    "diagnose_text",
    "diagnosis_dict",
    "flame_text",
    "journey_text",
    "maybe_span",
    "metrics_dict",
    "metrics_text",
    "plan_service_stats",
    "worker_pool_stats",
    "write_chrome_trace",
]
