"""Bottleneck attribution: why is this schedule as slow as it is?

:func:`diagnose` condenses a traced simulation's execution graph into a
:class:`Diagnosis`: the critical path's per-category time attribution
(compute / link serialization / bandwidth-cap queueing / FIFO stall /
semaphore wait / overheads), which channel the path runs through, and
actionable hints phrased in the program's own tuning levers (``ch=``,
``parallelize``, protocol, aggregation) — the knobs the paper's
evaluation turns by hand. :func:`chunk_journey` answers the dual
question for one logical chunk: where did ``chunk(rank, buf, idx)``
travel, hop by hop, and what did each hop cost?
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..core.errors import RuntimeConfigError
from .graph import CATEGORIES, ExecutionGraph, PathStep

# Human phrasing for each attribution category.
CATEGORY_LABELS = {
    "compute": "copy-engine compute",
    "link": "link serialization / latency",
    "queue": "bandwidth-cap queueing",
    "fifo_stall": "FIFO stall (in-order delivery)",
    "sem_wait": "semaphore wait (cross-TB deps)",
    "slot_wait": "FIFO slot back-pressure",
    "overhead": "fixed per-instruction overhead",
    "launch": "kernel launch",
}


@dataclass
class JourneyHop:
    """One instruction a chunk's data passed through."""

    rank: int
    tb: int
    tile: int
    step: int
    op: str
    channel: int
    start_us: float
    end_us: float
    wait_us: float  # latency since the previous hop finished

    @property
    def duration_us(self) -> float:
        return self.end_us - self.start_us


@dataclass
class Diagnosis:
    """Critical-path attribution of one simulated execution."""

    time_us: float
    attribution: Dict[str, float]
    dominant: str
    path: List[PathStep] = field(default_factory=list)
    channel_share: Dict[int, float] = field(default_factory=dict)
    crossings: Dict[str, int] = field(default_factory=dict)
    hints: List[str] = field(default_factory=list)
    # Conformance witnesses folded in by
    # :func:`repro.conformance.fold_into_diagnosis`: the diagnosis says
    # why the schedule is slow, the witnesses say why it is wrong.
    witnesses: List[str] = field(default_factory=list)

    @property
    def dominant_share(self) -> float:
        if self.time_us <= 0:
            return 0.0
        return self.attribution.get(self.dominant, 0.0) / self.time_us


def _require_graph(result) -> ExecutionGraph:
    graph = getattr(result, "graph", None)
    if graph is None:
        raise RuntimeConfigError(
            "no execution graph; run with SimConfig(collect_trace=True) "
            "or SimConfig(tracer=...) to enable trace collection"
        )
    return graph


def diagnose(result) -> Diagnosis:
    """Analyze a traced :class:`~repro.runtime.SimResult`."""
    graph = _require_graph(result)
    path = graph.critical_path()
    attribution = graph.attribution()
    dominant = max(CATEGORIES, key=lambda kind: attribution[kind])

    # Share of the on-GPU path (launch excluded) spent per channel.
    core = max(graph.core_elapsed_us, 1e-12)
    channel_share: Dict[int, float] = {}
    for step in path:
        node = graph.nodes.get(step.node) if step.node else None
        if node is None:
            continue
        channel_share[node.channel] = (
            channel_share.get(node.channel, 0.0) + step.duration_us
        )
    channel_share = {
        ch: share / core for ch, share in sorted(channel_share.items())
    }

    diagnosis = Diagnosis(
        time_us=result.time_us,
        attribution=attribution,
        dominant=dominant,
        path=path,
        channel_share=channel_share,
        crossings=dict(graph.crossings),
        hints=[],
    )
    diagnosis.hints = _hints(diagnosis)
    return diagnosis


def _hints(diag: Diagnosis) -> List[str]:
    """Actionable suggestions phrased in the DSL's tuning levers."""
    hints: List[str] = []
    share = diag.dominant_share
    if diag.channel_share:
        top_ch, top_share = max(diag.channel_share.items(),
                                key=lambda kv: kv[1])
        if top_share >= 0.5 and len(diag.channel_share) <= 2:
            hints.append(
                f"channel {top_ch} is on the critical path "
                f"{top_share:.0%} of virtual time; spreading work over "
                f"more channels (`ch=`) or `parallelize` likely helps"
            )
    if diag.dominant == "link":
        hops = diag.crossings.get("fifo", 0)
        hints.append(
            f"latency/serialization-bound: the path crosses {hops} "
            "dependent transfers; fewer hops (a flatter algorithm) or "
            "a low-latency protocol (LL/LL128) likely helps"
        )
    elif diag.dominant == "queue":
        hints.append(
            f"bandwidth-cap queueing is {share:.0%} of elapsed time: "
            "transfers contend for shared links; stripe over more "
            "channels (`ch=`) or aggregate messages to cut per-message "
            "costs"
        )
    elif diag.dominant == "compute":
        hints.append(
            f"copy-engine bound ({share:.0%} of elapsed time): a "
            "single thread block cannot saturate the link; raise "
            "`instances`/`parallelize` so more thread blocks split the "
            "payload"
        )
    elif diag.dominant == "fifo_stall":
        hints.append(
            "FIFO stalls dominate: receivers wait on in-order slot "
            "delivery; more parallel connections (`ch=`) or a protocol "
            "with more slots reduces head-of-line blocking"
        )
    elif diag.dominant == "sem_wait":
        hints.append(
            "cross-thread-block semaphore waits dominate: the schedule "
            "serializes on dep edges; placing dependent instructions on "
            "one thread block or adding channels removes them"
        )
    elif diag.dominant in ("overhead", "launch"):
        hints.append(
            "fixed overheads dominate: the payload is too small for "
            "this schedule; aggregate more data per instruction or use "
            "fewer instructions (fusion, fewer steps)"
        )
    return hints


def diagnosis_dict(diag: Diagnosis, max_path_steps: int = 64) -> Dict:
    """JSON-safe rendering of a :class:`Diagnosis`."""
    return {
        "time_us": round(diag.time_us, 3),
        "attribution": {
            kind: round(us, 3)
            for kind, us in diag.attribution.items()
        },
        "dominant": diag.dominant,
        "dominant_share": round(diag.dominant_share, 4),
        "channel_share": {
            str(ch): round(share, 4)
            for ch, share in diag.channel_share.items()
        },
        "crossings": dict(diag.crossings),
        "hints": list(diag.hints),
        "witnesses": list(diag.witnesses),
        "path_steps": len(diag.path),
        "path": [
            {
                "kind": step.kind,
                "start_us": round(step.start_us, 3),
                "end_us": round(step.end_us, 3),
                "node": list(step.node) if step.node else None,
                "label": step.label,
            }
            for step in sorted(diag.path,
                               key=lambda s: -s.duration_us)
            [:max_path_steps]
        ],
    }


def diagnose_text(diag: Diagnosis, top: int = 8) -> str:
    """Terminal rendering: bottleneck table, channels, hints."""
    lines = [f"critical path covers {diag.time_us:.1f}us "
             f"(attribution is exact by construction)"]
    lines.append(f"{'category':<34s} {'us':>10s} {'share':>7s}")
    total = max(diag.time_us, 1e-12)
    ranked = sorted(diag.attribution.items(), key=lambda kv: -kv[1])
    for kind, us in ranked:
        if us <= 0:
            continue
        marker = " <- dominant" if kind == diag.dominant else ""
        lines.append(
            f"{CATEGORY_LABELS.get(kind, kind):<34s} {us:>10.1f} "
            f"{us / total:>6.0%}{marker}"
        )
    if diag.channel_share:
        shares = ", ".join(
            f"ch{ch}: {share:.0%}"
            for ch, share in diag.channel_share.items()
        )
        lines.append(f"critical-path time by channel: {shares}")
    if diag.crossings:
        lines.append(
            "dependency crossings: " + ", ".join(
                f"{kind}={count}"
                for kind, count in sorted(diag.crossings.items())
            )
        )
    if diag.hints:
        lines.append("hints:")
        lines += [f"  - {hint}" for hint in diag.hints]
    if diag.witnesses:
        lines.append("conformance witnesses:")
        lines += [f"  - {witness}" for witness in diag.witnesses]
    heaviest = sorted(diag.path, key=lambda s: -s.duration_us)[:top]
    if heaviest:
        lines.append(f"heaviest path intervals (top {len(heaviest)}):")
        for step in sorted(heaviest, key=lambda s: s.start_us):
            where = (f" at r{step.node[0]}/tb{step.node[1]} "
                     f"tile{step.node[2]} step{step.node[3]}"
                     if step.node else "")
            label = f" ({step.label})" if step.label else ""
            lines.append(
                f"  [{step.start_us:>9.1f}..{step.end_us:>9.1f}] "
                f"{step.duration_us:>8.1f}us {step.kind}{where}{label}"
            )
    return "\n".join(lines)


def chunk_journey(result, rank: int, buffer, index: int,
                  tile: int = 0) -> List[JourneyHop]:
    """Hop-by-hop trajectory of one origin chunk's data.

    ``(rank, buffer, index)`` names an input chunk present at program
    start (buffer aliases like ``"in"`` are accepted); the journey is
    every instruction whose lineage contains it, in execution order,
    restricted to one pipeline ``tile`` (pass ``tile=None`` for all).
    """
    from ..core.buffers import as_buffer

    graph = _require_graph(result)
    origin = (rank, as_buffer(buffer).value, index)
    known = set()
    for node in graph.nodes.values():
        known |= node.lineage
    if origin not in known:
        # In-place collectives canonicalize aliased buffers at trace
        # time (e.g. input -> output); follow the alias when the
        # requested name resolves to exactly one recorded origin.
        aliased = [
            candidate for candidate in known
            if candidate[0] == rank and candidate[2] == index
        ]
        if len({candidate[1] for candidate in aliased}) == 1:
            origin = aliased[0]
    hops: List[JourneyHop] = []
    nodes = [
        node for node in graph.nodes.values()
        if origin in node.lineage
        and (tile is None or node.tile == tile)
    ]
    nodes.sort(key=lambda n: (n.start_us, n.end_us, n.key))
    prev_end: Optional[float] = None
    for node in nodes:
        wait = 0.0 if prev_end is None else max(0.0,
                                                node.start_us - prev_end)
        hops.append(JourneyHop(
            rank=node.rank, tb=node.tb, tile=node.tile, step=node.step,
            op=node.op, channel=node.channel,
            start_us=node.start_us, end_us=node.end_us, wait_us=wait,
        ))
        prev_end = max(prev_end or 0.0, node.end_us)
    return hops


def journey_text(hops: List[JourneyHop], limit: int = 32) -> str:
    """Terminal rendering of a :func:`chunk_journey`."""
    if not hops:
        return "(no instruction carries this chunk; check rank/buffer/index)"
    lines = [f"{'hop':>4s} {'where':>10s} {'op':>5s} {'ch':>3s} "
             f"{'start us':>10s} {'end us':>10s} {'gap us':>8s}"]
    shown = hops[:limit]
    for hop_index, hop in enumerate(shown):
        lines.append(
            f"{hop_index:>4d} r{hop.rank}/tb{hop.tb:<6d} {hop.op:>5s} "
            f"{hop.channel:>3d} {hop.start_us:>10.2f} "
            f"{hop.end_us:>10.2f} {hop.wait_us:>8.2f}"
        )
    if len(hops) > limit:
        lines.append(f"... {len(hops) - limit} more hops")
    return "\n".join(lines)
