"""repro.serve: the batched, async, shared-cache compile-plan service.

Turns the library's "compile then select" flow into a long-running
multi-tenant server: requests name a (collective, topology preset,
size, constraints) point, the service answers from its plan table /
the two-tier compile cache, deduplicates identical requests in flight,
and autotunes cold plan families in the background. See
docs/serving.md and :mod:`repro.serve.service`.
"""

from .client import PlanClient, PlanServiceError, SyncPlanClient
from .service import (
    COLLECTIVES,
    DEFAULT_TUNE_SIZES,
    DEFAULT_TUNE_SPACE,
    PlanFamily,
    PlanRequest,
    PlanService,
    ServeError,
)
from .stats import reset_serve_stats, serve_stats

__all__ = [
    "COLLECTIVES",
    "DEFAULT_TUNE_SIZES",
    "DEFAULT_TUNE_SPACE",
    "PlanClient",
    "PlanFamily",
    "PlanRequest",
    "PlanService",
    "PlanServiceError",
    "ServeError",
    "SyncPlanClient",
    "reset_serve_stats",
    "serve_stats",
]
