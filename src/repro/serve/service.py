"""The compile-plan service: NCCL-style runtime selection as a server.

The paper's model is "compile many specialized algorithms offline,
select per call at runtime"; this module makes that selection a
long-running, multi-tenant *service* instead of an in-process library
call. A :class:`PlanService` accepts (collective, topology preset,
size, constraints) requests over newline-delimited JSON and answers
with a ready-to-register plan — the MSCCL-IR XML plus selection
metadata — while doing three things no library call gets for free:

* **In-flight deduplication.** Concurrent identical requests (same
  plan *family*: collective x topology x constraints) ride one
  compile. The first request starts it; every other request awaits the
  same task and is counted in ``dedup_inflight``. A client that
  disconnects mid-wait never cancels the shared compile
  (:func:`asyncio.shield`) — the plan still lands for everyone else.
* **Two-tier cache serving.** Cold compiles run in a thread pool
  through the process-wide :class:`~repro.core.cache.CompileCache`, so
  a plan any previous process compiled is a disk hit (milliseconds),
  and a plan this process saw is a memory hit. Warm requests never
  touch the compiler at all: the plan table holds pre-serialized
  response payloads, so serving is a dict lookup plus a socket write.
* **Background autotuning.** The first request of a family returns a
  provisional single-candidate plan immediately; a background task
  then runs :func:`~repro.analysis.autotune.tune_async` over a
  candidate space (sharded across the worker pool when ``tune_jobs``
  > 1) and *promotes* the per-size winners into the plan table. Later
  requests transparently get the tuned plan for their size.

Counters (requests, hits, dedup, promotions, ...) live in
:mod:`repro.serve.stats` and surface through
:func:`repro.observe.metrics_dict`; each request also lands as a
``serve.request`` span on the service's tracer.
"""

from __future__ import annotations

import asyncio
import functools
import hashlib
import json
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from .. import algorithms
from ..analysis.autotune import Candidate, TuningResult, tune_async
from ..core.cache import CompileCache, default_compile_cache
from ..core.compiler import CompilerOptions, compile_program
from ..core.errors import MscclError
from ..observe.tracer import Tracer
from ..topology import presets
from ..topology.model import Topology
from .stats import bump, serve_stats

KiB = 1024
MiB = 1024 * 1024

# Responses are one JSON line each and a tuned plan's XML can run to
# megabytes, far past asyncio's 64 KiB default readline limit — both
# ends of the protocol size their stream buffers with this instead.
STREAM_LIMIT = 32 * MiB

PROTOCOLS = ("Simple", "LL", "LL128")

# Sizes the background tuner scores each candidate on; spans between
# grid points are tiled contiguously, mirroring build_registry.
DEFAULT_TUNE_SIZES = (64 * KiB, 1 * MiB, 16 * MiB)

# A deliberately small space: the service's job is to answer fast and
# refine in the background, not to exhaust the paper's full grid. Pass
# tune_space= for a bigger search (e.g. autotune.default_space()).
DEFAULT_TUNE_SPACE = (
    Candidate(1, 1, "LL"),
    Candidate(1, 2, "LL"),
    Candidate(1, 1, "Simple"),
    Candidate(1, 4, "Simple"),
    Candidate(2, 2, "LL"),
    Candidate(2, 4, "Simple"),
)


class ServeError(MscclError):
    """A request the service cannot satisfy (bad field, unknown name)."""


# -- plan-family builders -------------------------------------------------
# Module-level and parameterized by plain data so functools.partial over
# them pickles: the background tuner can shard candidate compiles across
# worker processes.

def _allreduce_builder(num_nodes, gpus_per_node, *, channels=1,
                       instances=1, protocol="Simple"):
    if num_nodes > 1:
        return algorithms.hierarchical_allreduce(
            num_nodes, gpus_per_node, instances=instances,
            protocol=protocol, intra_parallel=channels)
    return algorithms.ring_allreduce(
        gpus_per_node, channels=channels, instances=instances,
        protocol=protocol)


def _allgather_builder(num_nodes, gpus_per_node, *, channels=1,
                       instances=1, protocol="Simple"):
    return algorithms.ring_allgather(
        num_nodes * gpus_per_node, channels=channels,
        instances=instances, protocol=protocol)


def _reducescatter_builder(num_nodes, gpus_per_node, *, channels=1,
                           instances=1, protocol="Simple"):
    return algorithms.ring_reducescatter(
        num_nodes * gpus_per_node, channels=channels,
        instances=instances, protocol=protocol)


def _alltoall_builder(num_nodes, gpus_per_node, *, channels=1,
                      instances=1, protocol="Simple"):
    # channels is accepted for signature uniformity; the alltoall
    # algorithms parallelize via instances only.
    del channels
    if num_nodes > 1:
        return algorithms.twostep_alltoall(
            num_nodes, gpus_per_node, instances=instances,
            protocol=protocol)
    return algorithms.naive_alltoall(
        gpus_per_node, instances=instances, protocol=protocol,
        gpus_per_node=gpus_per_node)


def _broadcast_builder(num_nodes, gpus_per_node, *, channels=1,
                       instances=1, protocol="Simple"):
    del channels
    return algorithms.tree_broadcast(
        num_nodes * gpus_per_node, instances=instances,
        protocol=protocol)


COLLECTIVES: Dict[str, Callable] = {
    "allreduce": _allreduce_builder,
    "allgather": _allgather_builder,
    "reducescatter": _reducescatter_builder,
    "alltoall": _alltoall_builder,
    "broadcast": _broadcast_builder,
}

TOPOLOGIES: Dict[str, Callable[..., Topology]] = {
    "ndv4": presets.ndv4,
    "dgx2": presets.dgx2,
    "dgx1": presets.dgx1,
}


@dataclass(frozen=True)
class PlanRequest:
    """One (collective, topology, size, constraints) ask.

    ``protocol`` pins the protocol (otherwise the tuner picks per
    size); ``gpus_per_node`` only matters for the ``generic`` topology
    (presets fix their own GPU count). ``include_xml=False`` returns
    metadata only — for clients that select first and fetch lazily.
    ``if_plan`` revalidates: when it names the plan_id the request
    resolves to, the response is a tiny ``match`` line instead of the
    payload (plans are immutable, so a client-cached copy stays good).
    """

    collective: str
    size_bytes: int
    topology: str = "ndv4"
    nodes: int = 1
    gpus_per_node: int = 8
    protocol: Optional[str] = None
    include_xml: bool = True
    if_plan: Optional[str] = None

    @classmethod
    def from_doc(cls, doc: Dict) -> "PlanRequest":
        collective = doc.get("collective")
        if collective not in COLLECTIVES:
            raise ServeError(
                f"unknown collective {collective!r}; choose from "
                f"{', '.join(sorted(COLLECTIVES))}")
        topology = doc.get("topology", "ndv4")
        if topology != "generic" and topology not in TOPOLOGIES:
            raise ServeError(
                f"unknown topology {topology!r}; choose from "
                f"generic, {', '.join(sorted(TOPOLOGIES))}")
        try:
            size = int(doc.get("size", doc.get("size_bytes")))
        except (TypeError, ValueError):
            raise ServeError("request needs an integer 'size' in bytes")
        if size < 0:
            raise ServeError(f"size must be >= 0, got {size}")
        nodes = int(doc.get("nodes", 1))
        if nodes < 1:
            raise ServeError(f"nodes must be >= 1, got {nodes}")
        gpus = int(doc.get("gpus_per_node", 8))
        if gpus < 2:
            raise ServeError(f"gpus_per_node must be >= 2, got {gpus}")
        protocol = doc.get("protocol")
        if protocol is not None and protocol not in PROTOCOLS:
            raise ServeError(
                f"unknown protocol {protocol!r}; choose from "
                f"{', '.join(PROTOCOLS)}")
        return cls(collective=collective, size_bytes=size,
                   topology=topology, nodes=nodes, gpus_per_node=gpus,
                   protocol=protocol,
                   include_xml=bool(doc.get("include_xml", True)),
                   if_plan=doc.get("if_plan"))

    def family_key(self) -> Tuple:
        """Everything but the size: requests differing only in size
        share one compiled family (the plan table selects per size)."""
        gpus = self.gpus_per_node if self.topology == "generic" else None
        return (self.collective, self.topology, self.nodes, gpus,
                self.protocol)

    def build_topology(self) -> Topology:
        if self.topology == "generic":
            return presets.generic(self.gpus_per_node, self.nodes)
        return TOPOLOGIES[self.topology](self.nodes)


class PlanSpan:
    """One size range of a family's plan table, response-ready.

    Both response forms are serialized once at creation, so the warm
    path costs a range scan plus a socket write — no JSON encoding, no
    XML serialization, no compiler. On the wire the XML travels as a
    raw length-prefixed blob *after* the JSON header line (the header
    carries ``xml_bytes``): embedding megabytes of XML inside a JSON
    string would make both ends escape and re-parse it, which is most
    of a warm request's cost.
    """

    __slots__ = ("min_bytes", "max_bytes", "payload", "_json_full",
                 "_json_bare", "_wire_full", "_wire_bare",
                 "_wire_match")

    def __init__(self, min_bytes: float, max_bytes: float,
                 payload: Dict):
        self.min_bytes = min_bytes
        self.max_bytes = max_bytes
        self.payload = payload
        self._json_full = json.dumps(payload, separators=(",", ":"))
        bare = {k: v for k, v in payload.items() if k != "xml"}
        self._json_bare = json.dumps(bare, separators=(",", ":"))
        xml_raw = payload["xml"].encode()
        head = dict(bare)
        head["xml_bytes"] = len(xml_raw)
        self._wire_full = (
            b'{"ok":true,"plan":'
            + json.dumps(head, separators=(",", ":")).encode()
            + b"}\n" + xml_raw)
        self._wire_bare = (
            b'{"ok":true,"plan":' + self._json_bare.encode() + b"}\n")
        self._wire_match = (
            b'{"ok":true,"plan":{"plan_id":"'
            + payload["plan_id"].encode() + b'","match":true}}\n')

    def matches(self, nbytes: float) -> bool:
        return self.min_bytes <= nbytes <= self.max_bytes

    def payload_json(self, include_xml: bool) -> str:
        return self._json_full if include_xml else self._json_bare

    def wire_bytes(self, include_xml: bool) -> bytes:
        return self._wire_full if include_xml else self._wire_bare


class PlanFamily:
    """Everything the service knows about one plan family."""

    __slots__ = ("key", "builder", "topology", "sizing_chunks",
                 "spans", "tuned", "tune_scheduled")

    def __init__(self, key: Tuple, builder: Callable,
                 topology: Topology, sizing_chunks: int,
                 spans: List[PlanSpan]):
        self.key = key
        self.builder = builder
        self.topology = topology
        self.sizing_chunks = sizing_chunks
        self.spans = spans
        self.tuned = False
        self.tune_scheduled = False

    def span_for(self, nbytes: float) -> PlanSpan:
        for span in self.spans:
            if span.matches(nbytes):
                return span
        return self.spans[-1]


def _plan_payload(ir, *, label: str, sizing_chunks: int, origin: str,
                  tuned: bool, predicted_us: Optional[float]) -> Dict:
    xml = ir.to_xml()
    return {
        "algorithm": ir.name,
        "collective": ir.collective,
        "ranks": ir.num_ranks,
        "protocol": ir.protocol,
        "label": label,
        "sizing_chunks": sizing_chunks,
        "origin": origin,
        "tuned": tuned,
        "predicted_us": (None if predicted_us is None
                         else round(predicted_us, 3)),
        # Plans are immutable content: the id names these exact bytes,
        # so clients can cache by it and revalidate with 'if_plan'.
        "plan_id": hashlib.sha256(xml.encode()).hexdigest()[:16],
        "xml": xml,
    }


def _spans_from_tuning(result: TuningResult) -> List[PlanSpan]:
    """Per-size winners merged into contiguous spans (build_registry's
    tiling: first span reaches down to 0, last up to infinity)."""
    merged: List[List] = []  # [first_size, last_size, winner]
    for size in result.sizes:
        winner = result.best[size]
        if merged and merged[-1][2] == winner:
            merged[-1][1] = size
        else:
            merged.append([size, size, winner])
    spans = []
    for index, (first, _last, winner) in enumerate(merged):
        lower = 0 if index == 0 else first
        upper = (float("inf") if index == len(merged) - 1
                 else merged[index + 1][0] - 1)
        compiled = result._compiled[winner]
        ir = getattr(compiled, "ir", compiled)  # CompiledAlgorithm or raw
        spans.append(PlanSpan(lower, upper, _plan_payload(
            ir, label=winner.label,
            sizing_chunks=result.sizing_chunks, origin="tuned",
            tuned=True, predicted_us=result.times[(winner, first)],
        )))
    return spans


class PlanService:
    """The asyncio plan server; see the module docstring.

    ``compile_fn`` is a seam for tests (inject latency or failures);
    it must accept ``(program, options)`` like
    :func:`~repro.core.compiler.compile_program`. ``tune_jobs`` > 1
    shards background-tuning compiles and simulations across the
    :mod:`repro.analysis.parallel` worker pool.
    """

    def __init__(self, *, cache: Optional[CompileCache] = None,
                 autotune: bool = True,
                 tune_jobs: Optional[int] = None,
                 tune_sizes: Optional[Sequence[int]] = None,
                 tune_space: Optional[Sequence[Candidate]] = None,
                 executor_workers: int = 4,
                 tracer: Optional[Tracer] = None,
                 compile_fn: Optional[Callable] = None):
        self.cache = cache if cache is not None else default_compile_cache()
        self.autotune = autotune
        self.tune_jobs = tune_jobs
        self.tune_sizes = list(tune_sizes or DEFAULT_TUNE_SIZES)
        self.tune_space = list(tune_space or DEFAULT_TUNE_SPACE)
        self.tracer = tracer or Tracer()
        self._compile = compile_fn or compile_program
        self._executor = ThreadPoolExecutor(
            max_workers=executor_workers,
            thread_name_prefix="repro-serve")
        self._families: Dict[Tuple, PlanFamily] = {}
        self._inflight: Dict[Tuple, "asyncio.Task"] = {}
        self._background: set = set()
        self._server: Optional[asyncio.AbstractServer] = None
        self._stopping: Optional[asyncio.Event] = None

    # -- request path ----------------------------------------------------

    async def plan(self, request: PlanRequest) -> Dict:
        """The plan payload for one request (library-level entry)."""
        return json.loads(await self.plan_json(request))

    async def plan_json(self, request: PlanRequest) -> str:
        """The pre-serialized (inline-JSON) payload for one request."""
        span = await self._resolve(request)
        return span.payload_json(request.include_xml)

    async def plan_response(self, request: PlanRequest) -> bytes:
        """The pre-encoded wire response: JSON header line, then the
        XML as a raw blob of ``xml_bytes`` bytes when requested. A
        matching ``if_plan`` collapses the whole thing to one short
        ``match`` line."""
        span = await self._resolve(request)
        if (request.if_plan is not None
                and request.if_plan == span.payload["plan_id"]):
            bump("not_modified")
            return span._wire_match
        return span.wire_bytes(request.include_xml)

    async def _resolve(self, request: PlanRequest) -> PlanSpan:
        bump("requests")
        start = time.perf_counter() * 1e6
        key = request.family_key()
        family = self._families.get(key)
        if family is not None:
            source = "table"
            bump("plan_hits")
        else:
            task = self._inflight.get(key)
            if task is not None:
                source = "dedup"
                bump("dedup_inflight")
            else:
                source = "cold"
                bump("cold_misses")
                task = asyncio.ensure_future(self._build_family(request))
                self._inflight[key] = task
                task.add_done_callback(
                    lambda _t, key=key: self._inflight.pop(key, None))
            # shield: a cancelled waiter (client hung up) must not kill
            # the compile other waiters are parked on.
            family = await asyncio.shield(task)
        span = family.span_for(request.size_bytes)
        end = time.perf_counter() * 1e6
        self.tracer.emit(
            "serve.request", start, end, cat="serve",
            collective=request.collective, topology=request.topology,
            nodes=request.nodes, size_bytes=request.size_bytes,
            source=source, label=span.payload["label"],
        )
        return span

    async def _build_family(self, request: PlanRequest) -> PlanFamily:
        loop = asyncio.get_running_loop()
        family = await loop.run_in_executor(
            self._executor, self._compile_family, request)
        self._families[family.key] = family
        if self.autotune:
            self._schedule_tune(family)
        return family

    def _compile_family(self, request: PlanRequest) -> PlanFamily:
        """Executor-thread body: compile the family's default plan."""
        topology = request.build_topology()
        builder = functools.partial(
            COLLECTIVES[request.collective], request.nodes,
            topology.machine.gpus_per_node)
        protocol = request.protocol or "Simple"
        program = builder(channels=1, instances=1, protocol=protocol)
        options = CompilerOptions(
            max_threadblocks=topology.machine.sm_count,
            cache=self.cache)
        algo = self._compile(program, options)
        # last_hit_tier is thread-local, so this reads *this* compile's
        # tier even while sibling executor threads compile concurrently.
        if getattr(algo, "cache_hit", False):
            tier = self.cache.last_hit_tier
            origin = ("cache-disk" if tier == "disk" else "cache-memory")
        else:
            origin = "compiled"
        sizing = algo.sizing_chunks()
        payload = _plan_payload(
            algo.ir, label=f"ch=1 r=1 {protocol}", sizing_chunks=sizing,
            origin=origin, tuned=False, predicted_us=None)
        return PlanFamily(request.family_key(), builder, topology,
                          sizing, [PlanSpan(0, float("inf"), payload)])

    # -- background autotuning -------------------------------------------

    def _space_for(self, request_protocol: Optional[str]
                   ) -> List[Candidate]:
        if request_protocol is None:
            return list(self.tune_space)
        return [c for c in self.tune_space
                if c.protocol == request_protocol] or [
                    Candidate(1, 2, request_protocol)]

    def _schedule_tune(self, family: PlanFamily) -> None:
        if family.tune_scheduled:
            return
        family.tune_scheduled = True
        task = asyncio.ensure_future(self._tune_family(family))
        self._background.add(task)
        task.add_done_callback(self._background.discard)

    async def _tune_family(self, family: PlanFamily) -> None:
        bump("tune_runs")
        protocol = family.key[-1]
        try:
            result = await tune_async(
                family.builder, family.topology, self.tune_sizes,
                family.sizing_chunks, space=self._space_for(protocol),
                jobs=self.tune_jobs, executor=self._executor)
            spans = await asyncio.get_running_loop().run_in_executor(
                self._executor, _spans_from_tuning, result)
        except asyncio.CancelledError:
            raise
        except (MscclError, ValueError):
            bump("tune_errors")
            return
        family.spans = spans
        family.tuned = True
        bump("promotions")

    async def drain_background(self) -> None:
        """Wait for every in-flight compile and background tune."""
        while True:
            tasks = list(self._inflight.values()) + list(self._background)
            if not tasks:
                return
            await asyncio.gather(*tasks, return_exceptions=True)

    # -- stats -----------------------------------------------------------

    def stats(self) -> Dict:
        return {
            "serve": serve_stats(),
            "families": len(self._families),
            "tuned_families": sum(
                1 for f in self._families.values() if f.tuned),
            "compile_cache": self.cache.stats(),
        }

    # -- the wire protocol -----------------------------------------------

    async def start(self, host: str = "127.0.0.1",
                    port: int = 0) -> asyncio.AbstractServer:
        """Bind and start accepting; ``port=0`` picks a free port."""
        self._stopping = asyncio.Event()
        self._server = await asyncio.start_server(
            self._handle_client, host, port, limit=STREAM_LIMIT)
        return self._server

    @property
    def address(self) -> Tuple[str, int]:
        sock = self._server.sockets[0]
        name = sock.getsockname()
        return name[0], name[1]

    async def serve_until_shutdown(self, host: str = "127.0.0.1",
                                   port: int = 0) -> None:
        """Run until a client sends ``{"op": "shutdown"}``."""
        if self._server is None:
            await self.start(host, port)
        await self._stopping.wait()
        await self.stop()

    async def stop(self) -> None:
        for task in list(self._background) + list(self._inflight.values()):
            task.cancel()
        await asyncio.gather(
            *self._background, *self._inflight.values(),
            return_exceptions=True)
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        self._executor.shutdown(wait=False)
        if self._stopping is not None:
            self._stopping.set()

    async def _handle_client(self, reader: asyncio.StreamReader,
                             writer: asyncio.StreamWriter) -> None:
        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                out = await self._handle_line(line)
                if out is None:  # shutdown
                    writer.write(b'{"ok":true,"stopping":true}\n')
                    await writer.drain()
                    if self._stopping is not None:
                        self._stopping.set()
                    break
                writer.write(out)
                await writer.drain()
        except asyncio.CancelledError:
            bump("cancelled")
            raise
        except (ConnectionResetError, BrokenPipeError, OSError):
            # The client went away mid-request; any compile it started
            # is shielded and still lands for other waiters.
            bump("cancelled")
        finally:
            try:
                writer.close()
            except Exception:
                pass

    async def _handle_line(self, line: bytes) -> Optional[bytes]:
        try:
            msg = json.loads(line)
            if not isinstance(msg, dict):
                raise ValueError("request must be a JSON object")
        except ValueError as error:
            bump("errors")
            return _error_bytes(f"bad request: {error}")
        op = msg.get("op", "plan")
        if op == "plan":
            try:
                request = PlanRequest.from_doc(msg)
                return await self.plan_response(request)
            except ServeError as error:
                bump("errors")
                return _error_bytes(str(error))
            except MscclError as error:
                bump("errors")
                return _error_bytes(f"compilation failed: {error}")
        if op == "stats":
            doc = {"ok": True, "stats": self.stats()}
            return json.dumps(doc, separators=(",", ":")).encode() + b"\n"
        if op == "ping":
            return b'{"ok":true,"pong":true}\n'
        if op == "shutdown":
            return None
        bump("errors")
        return _error_bytes(f"unknown op {op!r}")


def _error_bytes(message: str) -> bytes:
    doc = {"ok": False, "error": message}
    return json.dumps(doc, separators=(",", ":")).encode() + b"\n"
