"""Process-wide plan-service counters.

Kept in their own module (no asyncio, no service import) so
:func:`repro.observe.metrics_dict` can pull them in lazily the same way
it pulls the worker-pool counters — a dashboard sees compile-cache,
worker-pool, and serving counters side by side in one dict.

All counters are monotone over the life of the process (a service
restart within one process keeps accumulating, mirroring how the
compile cache's counters behave). :func:`reset_serve_stats` exists for
tests and benchmarks that want a clean slate.
"""

from __future__ import annotations

import threading
from typing import Dict

_STATS: Dict[str, float] = {}
_LOCK = threading.Lock()

# Every counter the service bumps, so serve_stats() always has a
# stable, fully-populated shape even before the first request.
_COUNTERS = (
    "requests",        # plan requests received (incl. deduplicated)
    "plan_hits",       # answered straight from the plan table
    "dedup_inflight",  # piggybacked on an identical in-flight compile
    "cold_misses",     # compiles started (one per family, not request)
    "not_modified",    # if_plan revalidations answered with a match
    "promotions",      # background tunes whose winners were promoted
    "tune_runs",       # background tuning runs started
    "tune_errors",     # background tuning runs that failed
    "cancelled",       # client connections dropped mid-request
    "errors",          # malformed / unsatisfiable requests
)


def bump(name: str, delta: float = 1.0) -> None:
    with _LOCK:
        _STATS[name] = _STATS.get(name, 0.0) + delta


def reset_serve_stats() -> None:
    with _LOCK:
        _STATS.clear()


def serve_stats() -> Dict[str, float]:
    """JSON-safe counters plus the derived plan-table hit rate."""
    with _LOCK:
        stats = {name: int(_STATS.get(name, 0)) for name in _COUNTERS}
    requests = stats["requests"]
    stats["hit_rate"] = (
        round(stats["plan_hits"] / requests, 4) if requests else 0.0
    )
    return stats
