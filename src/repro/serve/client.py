"""Clients for the plan service's newline-delimited JSON protocol.

:class:`PlanClient` is the asyncio client the load generator and other
event-loop callers use — one connection, requests pipelined strictly
in order (the protocol guarantees in-order responses per connection).
:class:`SyncPlanClient` wraps it for scripts and the CLI: every call
spins a private event loop, connects, speaks, and disconnects.
"""

from __future__ import annotations

import asyncio
import json
from typing import Dict, Optional

from ..core.errors import MscclError


class PlanServiceError(MscclError):
    """The service answered ``ok: false`` (or spoke garbage)."""


class PlanClient:
    """One connection to a :class:`~repro.serve.service.PlanService`."""

    def __init__(self, host: str = "127.0.0.1", port: int = 8765):
        self.host = host
        self.port = port
        self._reader: Optional[asyncio.StreamReader] = None
        self._writer: Optional[asyncio.StreamWriter] = None
        # Plans are immutable content named by plan_id, so the client
        # keeps every payload it has seen and revalidates with
        # 'if_plan': a repeat ask costs one short 'match' line instead
        # of re-shipping megabytes of XML. _seen remembers which
        # plan_id each exact ask last resolved to (promotions change
        # it, and then the revalidation misses and refetches).
        self._plans: Dict[str, Dict] = {}
        self._seen: Dict[tuple, str] = {}

    async def connect(self) -> "PlanClient":
        from .service import STREAM_LIMIT

        self._reader, self._writer = await asyncio.open_connection(
            self.host, self.port, limit=STREAM_LIMIT)
        return self

    async def close(self) -> None:
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass
            self._writer = None
            self._reader = None

    async def __aenter__(self) -> "PlanClient":
        return await self.connect()

    async def __aexit__(self, *exc) -> None:
        await self.close()

    async def request(self, doc: Dict) -> Dict:
        """Send one message and await its response document."""
        if self._writer is None:
            await self.connect()
        self._writer.write(
            json.dumps(doc, separators=(",", ":")).encode() + b"\n")
        await self._writer.drain()
        line = await self._reader.readline()
        if not line:
            raise PlanServiceError("service closed the connection")
        try:
            response = json.loads(line)
        except ValueError:
            raise PlanServiceError(f"unparseable response: {line!r}")
        if not response.get("ok"):
            raise PlanServiceError(
                response.get("error", "service error"))
        plan = response.get("plan")
        if isinstance(plan, dict) and "xml_bytes" in plan:
            # The XML follows the header line as a raw blob — see
            # PlanSpan: shipping it inside the JSON string would make
            # both ends escape and re-parse megabytes per request.
            raw = await self._reader.readexactly(plan.pop("xml_bytes"))
            plan["xml"] = raw.decode()
        return response

    async def plan(self, collective: str, size_bytes: int, *,
                   topology: str = "ndv4", nodes: int = 1,
                   gpus_per_node: int = 8,
                   protocol: Optional[str] = None,
                   include_xml: bool = True) -> Dict:
        """Ask for a plan; returns the plan payload dict.

        Transparently revalidates against the client-side plan cache
        (see ``__init__``); the returned dict is always a fresh copy.
        """
        doc = {
            "op": "plan", "collective": collective, "size": size_bytes,
            "topology": topology, "nodes": nodes,
            "gpus_per_node": gpus_per_node,
            "include_xml": include_xml,
        }
        if protocol is not None:
            doc["protocol"] = protocol
        ask = (collective, size_bytes, topology, nodes, gpus_per_node,
               protocol, include_xml)
        cached_id = self._seen.get(ask)
        if cached_id is not None:
            doc["if_plan"] = cached_id
        response = await self.request(doc)
        plan = response["plan"]
        if plan.get("match"):
            return dict(self._plans[(plan["plan_id"], include_xml)])
        plan_id = plan.get("plan_id")
        if plan_id is not None:
            self._plans[(plan_id, include_xml)] = plan
            self._seen[ask] = plan_id
        return dict(plan)

    async def stats(self) -> Dict:
        return (await self.request({"op": "stats"}))["stats"]

    async def ping(self) -> bool:
        return bool((await self.request({"op": "ping"})).get("pong"))

    async def shutdown(self) -> None:
        """Ask the service to stop (fire-and-confirm)."""
        if self._writer is None:
            await self.connect()
        self._writer.write(b'{"op":"shutdown"}\n')
        await self._writer.drain()
        await self._reader.readline()
        await self.close()


class SyncPlanClient:
    """Blocking convenience wrapper: one event loop per call."""

    def __init__(self, host: str = "127.0.0.1", port: int = 8765):
        self.host = host
        self.port = port

    def _run(self, coro_fn, *args, **kwargs):
        async def body():
            async with PlanClient(self.host, self.port) as client:
                return await coro_fn(client, *args, **kwargs)
        return asyncio.run(body())

    def plan(self, collective: str, size_bytes: int, **kwargs) -> Dict:
        return self._run(PlanClient.plan, collective, size_bytes,
                         **kwargs)

    def stats(self) -> Dict:
        return self._run(PlanClient.stats)

    def ping(self) -> bool:
        return self._run(PlanClient.ping)

    def shutdown(self) -> None:
        return self._run(PlanClient.shutdown)
