"""All Pairs AllReduce (paper section 7.1.2).

A two-communication-step algorithm targeting small buffers: every rank
*gathers* one chunk from every other rank into scratch, locally reduces,
then *broadcasts* its reduced chunk to everyone. Same volume as Ring,
but 2 steps instead of 2R-2, so latency-bound sizes win.
"""

from __future__ import annotations

from ..core.collectives import AllReduce
from ..core.program import MSCCLProgram, chunk


def allpairs_allreduce(num_ranks: int, *, instances: int = 1,
                       protocol: str = "LL",
                       name: str = None) -> MSCCLProgram:
    """Build the All Pairs AllReduce (chunk ``r`` is owned by rank ``r``)."""
    collective = AllReduce(num_ranks, chunk_factor=num_ranks, in_place=True)
    label = name or f"allpairs_allreduce_r{instances}_{protocol.lower()}"
    with MSCCLProgram(label, collective, protocol=protocol,
                      instances=instances) as program:
        # Step 1: every rank gathers its own chunk index from all peers.
        for owner in range(num_ranks):
            for peer in range(num_ranks):
                if peer == owner:
                    continue
                slot = peer if peer < owner else peer - 1
                chunk(peer, "in", owner).copy(owner, "sc", slot)
        # Local reduction of the gathered copies into the owned chunk.
        for owner in range(num_ranks):
            total = chunk(owner, "in", owner)
            for slot in range(num_ranks - 1):
                total = total.reduce(chunk(owner, "sc", slot))
        # Step 2: broadcast the reduced chunk to every other rank.
        for owner in range(num_ranks):
            result = chunk(owner, "in", owner)
            for peer in range(num_ranks):
                if peer != owner:
                    result.copy(peer, "in", owner)
    return program
