"""Two-level hierarchical AllGather and ReduceScatter.

The multi-node decompositions that generalize the hierarchical
AllReduce's halves (section 2): AllGather runs inter-node rings among
same-index GPUs first (each pair on its own NIC), then intra-node
rings spread everything over NVLink; ReduceScatter is the mirror —
intra-node reduction toward the rank that will own each segment, then
inter-node rings that finish the sums on the owners' NICs.
"""

from __future__ import annotations

from typing import Optional

from ..core.collectives import AllGather, ReduceScatter
from ..core.program import MSCCLProgram, chunk


def hierarchical_allgather(num_nodes: int, gpus_per_node: int, *,
                           instances: int = 1, protocol: str = "Simple",
                           name: Optional[str] = None) -> MSCCLProgram:
    """Inter-node ring AllGather per GPU index, then intra-node rings.

    In-place: rank (n, g)'s chunk starts at output index n*G+g.
    """
    n, g = num_nodes, gpus_per_node
    num_ranks = n * g
    collective = AllGather(num_ranks, chunk_factor=1, in_place=True)
    label = name or (
        f"hier_allgather_{n}x{g}_r{instances}_{protocol.lower()}"
    )
    with MSCCLProgram(label, collective, gpus_per_node=g,
                      protocol=protocol, instances=instances) as program:
        # Phase 1: rings across nodes among same-index GPUs (channel 0).
        # After this, GPU (m, gpu) holds the chunks of every (node, gpu).
        for gpu in range(g):
            cross_ranks = [node * g + gpu for node in range(n)]
            for position, owner in enumerate(cross_ranks):
                c = chunk(owner, "out", owner)
                for step in range(n - 1):
                    nxt = cross_ranks[(position + 1 + step) % n]
                    c = c.copy(nxt, "out", owner, ch=0)
        # Phase 2: intra-node rings spread each gathered chunk to the
        # node's other GPUs (channel 1).
        for node in range(n):
            local_ranks = [node * g + i for i in range(g)]
            for position, holder in enumerate(local_ranks):
                gpu = holder % g
                for source_node in range(n):
                    owner = source_node * g + gpu
                    c = chunk(holder, "out", owner)
                    for step in range(g - 1):
                        nxt = local_ranks[(position + 1 + step) % g]
                        c = c.copy(nxt, "out", owner, ch=1)
    return program


def hierarchical_reducescatter(num_nodes: int, gpus_per_node: int, *,
                               instances: int = 1,
                               protocol: str = "Simple",
                               name: Optional[str] = None
                               ) -> MSCCLProgram:
    """Aggregated intra-node ReduceScatter, then inter-node rings.

    The first half of the hierarchical AllReduce as a standalone
    (in-place) collective: rank (n, g) ends with the fully reduced
    segment at index n*G+g of the canonical buffer.
    """
    n, g = num_nodes, gpus_per_node
    num_ranks = n * g
    collective = ReduceScatter(num_ranks, chunk_factor=1, in_place=True)
    label = name or (
        f"hier_reducescatter_{n}x{g}_r{instances}_{protocol.lower()}"
    )
    with MSCCLProgram(label, collective, gpus_per_node=g,
                      protocol=protocol, instances=instances) as program:
        # Phase 1: intra-node ReduceScatter on channel 0. GPU (node, g)
        # collects the intra-node sums of the chunks destined for GPU
        # index g across all nodes — a strided set {m*G+g}, so the
        # chunks ring individually (no contiguous aggregation here).
        for node in range(n):
            local_ranks = [node * g + i for i in range(g)]
            for gpu in range(g):
                for source_node in range(n):
                    index = source_node * g + gpu
                    c = chunk(local_ranks[(gpu + 1) % g], "in", index)
                    for step in range(1, g):
                        nxt = local_ranks[(gpu + 1 + step) % g]
                        c = chunk(nxt, "in", index).reduce(c, ch=0)
        # Phase 2: inter-node rings among same-index GPUs on channel 1;
        # the fully reduced chunk for rank (i, g) lands at index i*G+g,
        # exactly the rank's own segment.
        for gpu in range(g):
            cross_ranks = [node * g + gpu for node in range(n)]
            for landing_node in range(n):
                index = landing_node * g + gpu
                c = chunk(cross_ranks[(landing_node + 1) % n], "in",
                          index)
                for step in range(1, n):
                    nxt = cross_ranks[(landing_node + 1 + step) % n]
                    c = chunk(nxt, "in", index).reduce(c, ch=1)
    return program
