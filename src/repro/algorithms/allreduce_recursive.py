"""Recursive halving-doubling AllReduce (Rabenseifner's algorithm).

The classic log-step bandwidth-optimal AllReduce for power-of-two rank
counts: a ReduceScatter by recursive *halving* (each round exchanges
half the remaining data with a partner at xor-distance) followed by an
AllGather by recursive *doubling*. 2*log2(R) communication steps and
2*(R-1)/R of the buffer on the wire per rank — same bandwidth as Ring
with far fewer hops, a good mid-size alternative the DSL makes cheap
to try.
"""

from __future__ import annotations

from typing import Optional

from ..core.collectives import AllReduce
from ..core.errors import ProgramError
from ..core.program import MSCCLProgram, chunk


def _block(rank: int, bit: int, num_ranks: int, owned_base: int,
           owned_size: int):
    """Split an owned block in half; the half to keep depends on the
    partner's side of the current bit."""
    half = owned_size // 2
    if rank & bit:
        keep = (owned_base + half, half)
        give = (owned_base, half)
    else:
        keep = (owned_base, half)
        give = (owned_base + half, half)
    return keep, give


def recursive_halving_doubling_allreduce(
        num_ranks: int, *, instances: int = 1, protocol: str = "LL128",
        name: Optional[str] = None) -> MSCCLProgram:
    """Build Rabenseifner's AllReduce (power-of-two ranks only)."""
    if num_ranks < 2 or num_ranks & (num_ranks - 1):
        raise ProgramError(
            "recursive halving-doubling needs a power-of-two rank count"
        )
    collective = AllReduce(num_ranks, chunk_factor=num_ranks,
                           in_place=True)
    label = name or (
        f"rhd_allreduce_{num_ranks}_r{instances}_{protocol.lower()}"
    )
    with MSCCLProgram(label, collective, protocol=protocol,
                      instances=instances) as program:
        # ReduceScatter by recursive halving: after round k, rank r owns
        # (holds the partial sum of) a block of num_ranks / 2^(k+1)
        # chunks determined by r's low bits.
        owned = {rank: (0, num_ranks) for rank in range(num_ranks)}
        bit = 1
        while bit < num_ranks:
            for rank in range(num_ranks):
                partner = rank ^ bit
                if rank > partner:
                    continue  # handle each pair once
                keep_r, give_r = _block(rank, bit, num_ranks, *owned[rank])
                # The partner's kept block equals this rank's given one.
                for a, b, recv_block in (
                        (rank, partner, keep_r),
                        (partner, rank, give_r)):
                    base, size = recv_block
                    incoming = chunk(b, "in", base, count=size)
                    chunk(a, "in", base, count=size).reduce(incoming)
                owned[rank] = keep_r
                owned[partner] = give_r
            bit <<= 1
        # AllGather by recursive doubling: blocks merge pairwise back up.
        bit = num_ranks >> 1
        while bit >= 1:
            for rank in range(num_ranks):
                partner = rank ^ bit
                if rank > partner:
                    continue
                base_r, size_r = owned[rank]
                base_p, size_p = owned[partner]
                chunk(rank, "in", base_r, count=size_r).copy(
                    partner, "in", base_r, count=size_r
                )
                chunk(partner, "in", base_p, count=size_p).copy(
                    rank, "in", base_p, count=size_p
                )
                merged = (min(base_r, base_p), size_r + size_p)
                owned[rank] = merged
                owned[partner] = merged
            bit >>= 1
    return program


def recursive_doubling_allgather(
        num_ranks: int, *, instances: int = 1, protocol: str = "LL",
        name: Optional[str] = None) -> MSCCLProgram:
    """Recursive-doubling AllGather: log2(R) steps, doubling payloads.

    Round k: exchange everything gathered so far with the partner at
    xor-distance 2^k. Latency-optimal for power-of-two rank counts.
    """
    if num_ranks < 2 or num_ranks & (num_ranks - 1):
        raise ProgramError(
            "recursive doubling needs a power-of-two rank count"
        )
    from ..core.collectives import AllGather

    collective = AllGather(num_ranks, chunk_factor=1, in_place=True)
    label = name or f"rd_allgather_{num_ranks}_r{instances}"
    with MSCCLProgram(label, collective, protocol=protocol,
                      instances=instances) as program:
        held = {rank: [rank] for rank in range(num_ranks)}
        bit = 1
        while bit < num_ranks:
            for rank in range(num_ranks):
                partner = rank ^ bit
                if rank > partner:
                    continue
                for a, b in ((rank, partner), (partner, rank)):
                    for owner in held[a]:
                        chunk(a, "out", owner).copy(b, "out", owner)
                merged = sorted(held[rank] + held[partner])
                held[rank] = merged
                held[partner] = list(merged)
            bit <<= 1
    return program
