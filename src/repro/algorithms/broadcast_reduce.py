"""Broadcast and Reduce algorithms: chains and binary trees.

Rooted collectives round out the MPI set. The chain variants pipeline
well for large buffers (every link busy in steady state); the tree
variants take log(R) hops and win at small sizes — the same
latency/bandwidth trade the AllReduce algorithms exhibit.
"""

from __future__ import annotations

from typing import List, Optional

from ..core.collectives import Broadcast, Reduce
from ..core.program import MSCCLProgram, chunk


def _tree_children(position: int, size: int) -> List[int]:
    kids = [2 * position + 1, 2 * position + 2]
    return [k for k in kids if k < size]


def _rooted_order(num_ranks: int, root: int) -> List[int]:
    """Rank order with the root first (tree positions map through it)."""
    return [root] + [r for r in range(num_ranks) if r != root]


def chain_broadcast(num_ranks: int, *, root: int = 0,
                    chunk_factor: int = 4, instances: int = 1,
                    protocol: str = "Simple",
                    name: Optional[str] = None) -> MSCCLProgram:
    """Pipeline broadcast: chunks flow down a chain of ranks.

    Splitting the buffer into ``chunk_factor`` chunks lets chunk k+1
    enter the chain while chunk k is still propagating.
    """
    collective = Broadcast(num_ranks, chunk_factor=chunk_factor, root=root)
    order = _rooted_order(num_ranks, root)
    label = name or f"chain_broadcast_{num_ranks}_r{instances}"
    with MSCCLProgram(label, collective, protocol=protocol,
                      instances=instances) as program:
        for index in range(chunk_factor):
            c = chunk(root, "in", index)
            c = c.copy(root, "out", index)
            for nxt in order[1:]:
                c = c.copy(nxt, "out", index)
    return program


def tree_broadcast(num_ranks: int, *, root: int = 0,
                   chunk_factor: int = 1, instances: int = 1,
                   protocol: str = "LL",
                   name: Optional[str] = None) -> MSCCLProgram:
    """Binary-tree broadcast: log-depth for latency-bound sizes."""
    collective = Broadcast(num_ranks, chunk_factor=chunk_factor, root=root)
    order = _rooted_order(num_ranks, root)
    label = name or f"tree_broadcast_{num_ranks}_r{instances}"
    with MSCCLProgram(label, collective, protocol=protocol,
                      instances=instances) as program:
        for index in range(chunk_factor):
            chunk(root, "in", index).copy(root, "out", index)
            # Pre-order: parents forward before children do.
            for position in range(num_ranks):
                rank = order[position]
                for child_pos in _tree_children(position, num_ranks):
                    child = order[child_pos]
                    chunk(rank, "out", index).copy(child, "out", index)
    return program


def chain_reduce(num_ranks: int, *, root: int = 0,
                 chunk_factor: int = 4, instances: int = 1,
                 protocol: str = "Simple",
                 name: Optional[str] = None) -> MSCCLProgram:
    """Pipeline reduce: partial sums flow up a chain toward the root."""
    collective = Reduce(num_ranks, chunk_factor=chunk_factor, root=root)
    order = _rooted_order(num_ranks, root)
    label = name or f"chain_reduce_{num_ranks}_r{instances}"
    with MSCCLProgram(label, collective, protocol=protocol,
                      instances=instances) as program:
        for index in range(chunk_factor):
            # Accumulate from the chain's tail toward the root.
            c = chunk(order[-1], "in", index)
            for rank in reversed(order[:-1]):
                c = chunk(rank, "in", index).reduce(c)
            c.copy(root, "out", index)
    return program


def tree_reduce(num_ranks: int, *, root: int = 0,
                chunk_factor: int = 1, instances: int = 1,
                protocol: str = "LL",
                name: Optional[str] = None) -> MSCCLProgram:
    """Binary-tree reduce: children accumulate into parents, post-order."""
    collective = Reduce(num_ranks, chunk_factor=chunk_factor, root=root)
    order = _rooted_order(num_ranks, root)
    label = name or f"tree_reduce_{num_ranks}_r{instances}"
    with MSCCLProgram(label, collective, protocol=protocol,
                      instances=instances) as program:
        for index in range(chunk_factor):
            # Deepest positions first so subtrees finish before parents.
            for position in reversed(range(num_ranks)):
                rank = order[position]
                for child_pos in _tree_children(position, num_ranks):
                    child = order[child_pos]
                    acc = chunk(rank, "in", index)
                    acc.reduce(chunk(child, "in", index))
            chunk(root, "in", index).copy(root, "out", index)
    return program
