"""The SCCL (1,2,2) AllGather for a DGX-1 (paper section 7.5, Fig. 11).

SCCL [Cai et al., PPoPP'21] synthesizes pareto-optimal algorithms; the
(1,2,2) AllGather finishes in two communication steps on 8 GPUs (versus
seven for a ring): GPUs first exchange their chunk with a partner, then
every GPU forwards both chunks it holds to one GPU of each remaining
pair. We reconstruct that schedule with xor-partner routing: step one
pairs ``r`` with ``r ^ 1``; step two sends both held chunks to
``r ^ 2``, ``r ^ 4`` and ``r ^ 6``.
"""

from __future__ import annotations

from ..core.collectives import AllGather
from ..core.program import MSCCLProgram, chunk


def sccl_allgather_122(num_ranks: int = 8, *, instances: int = 1,
                       protocol: str = "Simple",
                       name: str = None) -> MSCCLProgram:
    """Build the two-step (1,2,2) AllGather (requires a power of two)."""
    if num_ranks & (num_ranks - 1) or num_ranks < 4:
        raise ValueError("the (1,2,2) AllGather needs >= 4 ranks, power of 2")
    collective = AllGather(num_ranks, chunk_factor=1, in_place=True)
    label = name or f"sccl_allgather_122_r{instances}_{protocol.lower()}"
    with MSCCLProgram(label, collective, protocol=protocol,
                      instances=instances) as program:
        # Step 1: exchange with the xor-1 partner.
        for rank in range(num_ranks):
            chunk(rank, "in", 0).copy(rank ^ 1, "out", rank)
        # Step 2: forward both held chunks to one member of every other
        # pair (xor offsets 2, 4, 6, ...).
        for rank in range(num_ranks):
            held = (rank, rank ^ 1)
            for offset in range(2, num_ranks, 2):
                peer = rank ^ offset
                for owner in held:
                    chunk(rank, "out", owner).copy(peer, "out", owner)
    return program
