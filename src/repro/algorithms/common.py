"""Shared MSCCLang helper routines (paper Figure 3b).

These are the Ring ReduceScatter / AllGather building blocks used by
several algorithms, written exactly in the paper's style: route a chunk
around a ring of ranks, reducing on the first traversal and copying on
the second.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..core.program import chunk


def ring_reduce_scatter(ranks: Sequence[int], offset: int, count: int,
                        buffer: str = "in",
                        ch: Optional[int] = None) -> None:
    """Ring ReduceScatter over ``ranks``.

    ``offset`` indexes into the buffer; ``count`` chunks move per step
    (the aggregation directive of section 5.1). After this, rank
    ``ranks[r]`` holds the reduced chunks at ``offset + r*count``.
    """
    n = len(ranks)
    for r in range(n):
        index = offset + r * count
        c = chunk(ranks[(r + 1) % n], buffer, index, count)
        for step in range(1, n):
            nxt = ranks[(step + r + 1) % n]
            c = chunk(nxt, buffer, index, count).reduce(c, ch=ch)


def ring_all_gather(ranks: Sequence[int], offset: int, count: int,
                    buffer: str = "in",
                    ch: Optional[int] = None) -> None:
    """Ring AllGather over ``ranks``.

    Rank ``ranks[r]``'s chunks at ``offset + r*count`` are replicated to
    every rank in the ring.
    """
    n = len(ranks)
    for r in range(n):
        index = offset + r * count
        c = chunk(ranks[r], buffer, index, count)
        for step in range(n - 1):
            nxt = ranks[(step + r + 1) % n]
            c = c.copy(nxt, buffer, index, count, ch=ch)
