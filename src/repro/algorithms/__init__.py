"""Collective algorithms written in the MSCCLang DSL (paper section 7,
plus the standard repertoire the DSL makes cheap to build)."""

from .allgather_bruck import bruck_allgather
from .allgather_ring import ring_allgather, ring_reducescatter
from .allgather_sccl import sccl_allgather_122
from .allreduce_allpairs import allpairs_allreduce
from .allreduce_double_tree import double_binary_tree_allreduce, tree_structure
from .allreduce_recursive import (
    recursive_doubling_allgather,
    recursive_halving_doubling_allreduce,
)
from .allreduce_hierarchical import hierarchical_allreduce
from .hierarchical_gather_scatter import (
    hierarchical_allgather,
    hierarchical_reducescatter,
)
from .allreduce_ring import ring_allreduce
from .alltoall_hierarchical import hierarchical_alltoall
from .alltoall_twostep import naive_alltoall, twostep_alltoall
from .broadcast_reduce import (
    chain_broadcast,
    chain_reduce,
    tree_broadcast,
    tree_reduce,
)
from .alltonext import alltonext, naive_alltonext
from .common import ring_all_gather, ring_reduce_scatter

__all__ = [
    "allpairs_allreduce",
    "bruck_allgather",
    "chain_broadcast",
    "chain_reduce",
    "double_binary_tree_allreduce",
    "hierarchical_alltoall",
    "recursive_doubling_allgather",
    "recursive_halving_doubling_allreduce",
    "tree_broadcast",
    "tree_reduce",
    "tree_structure",
    "alltonext",
    "hierarchical_allgather",
    "hierarchical_allreduce",
    "hierarchical_reducescatter",
    "naive_alltoall",
    "naive_alltonext",
    "ring_all_gather",
    "ring_allgather",
    "ring_allreduce",
    "ring_reduce_scatter",
    "ring_reducescatter",
    "sccl_allgather_122",
    "twostep_alltoall",
]
