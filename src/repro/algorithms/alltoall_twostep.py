"""Two-Step AllToAll (paper section 7.3, Figure 9).

A naive AllToAll sends one small chunk per (source, destination) GPU
pair, which crosses InfiniBand N*G*G times per node pair with heavy
per-send overhead. The Two-Step algorithm first gathers, inside each
source node, all chunks headed for destination node ``m`` onto the one
local GPU whose index matches the sender's, then ships them as a single
aggregated IB transfer.
"""

from __future__ import annotations

from ..core.collectives import AllToAll
from ..core.program import MSCCLProgram, chunk


def twostep_alltoall(num_nodes: int, gpus_per_node: int, *,
                     instances: int = 1, protocol: str = "Simple",
                     name: str = None) -> MSCCLProgram:
    """Build the Two-Step AllToAll of paper Figure 9."""
    n, g = num_nodes, gpus_per_node
    num_ranks = n * g
    collective = AllToAll(num_ranks, chunk_factor=1)
    label = name or (
        f"twostep_alltoall_{n}x{g}_r{instances}_{protocol.lower()}"
    )
    with MSCCLProgram(label, collective, gpus_per_node=g,
                      protocol=protocol, instances=instances) as program:
        for dst_node in range(n):
            for dst_gpu in range(g):
                for src_node in range(n):
                    for src_gpu in range(g):
                        c = chunk((src_node, src_gpu), "in",
                                  (dst_node, dst_gpu))
                        if dst_node == src_node:
                            # Intra-node traffic goes straight to the
                            # destination GPU's output slot.
                            c.copy((dst_node, dst_gpu), "out",
                                   (src_node, src_gpu))
                        else:
                            # Step 1: gather onto the staging GPU of the
                            # source node (local index == sender's).
                            c.copy((src_node, dst_gpu), "sc",
                                   (dst_node, src_gpu))
                # Step 2: one aggregated IB send of all G staged chunks.
                for src_node in range(n):
                    if src_node == dst_node:
                        continue
                    staged = chunk((src_node, dst_gpu), "sc",
                                   dst_node * g, count=g)
                    staged.copy((dst_node, dst_gpu), "out", src_node * g)
    return program


def naive_alltoall(num_ranks: int, *, instances: int = 1,
                   protocol: str = "Simple", gpus_per_node: int = None,
                   name: str = None) -> MSCCLProgram:
    """The one-step AllToAll: a direct send per (src, dst) pair.

    This is both NCCL's AllToAll (point-to-point sends between all
    GPUs) and the paper's reference for what Two-Step improves on.
    """
    collective = AllToAll(num_ranks, chunk_factor=1)
    label = name or f"naive_alltoall_{num_ranks}_r{instances}"
    with MSCCLProgram(label, collective, gpus_per_node=gpus_per_node,
                      protocol=protocol, instances=instances) as program:
        for src in range(num_ranks):
            for dst in range(num_ranks):
                chunk(src, "in", dst).copy(dst, "out", src)
    return program
