"""Bruck's AllGather: ceil(log2 R) steps for *any* rank count.

Recursive doubling needs a power of two; Bruck's algorithm reaches the
same log-step latency for arbitrary R. In round k each rank sends every
block it holds to the rank ``2^k`` positions behind it (and receives
from ``2^k`` ahead), doubling the held span until all R blocks arrive;
the final round sends only the remainder. Blocks travel "rotated" —
rank r accumulates blocks r, r+1, r+2, ... — but since we address
destination indices explicitly, no final rotation pass is needed.
"""

from __future__ import annotations

from typing import Optional

from ..core.collectives import AllGather
from ..core.program import MSCCLProgram, chunk


def bruck_allgather(num_ranks: int, *, instances: int = 1,
                    protocol: str = "LL",
                    name: Optional[str] = None) -> MSCCLProgram:
    """Build Bruck's AllGather for any number of ranks >= 2."""
    if num_ranks < 2:
        raise ValueError("bruck_allgather needs at least 2 ranks")
    collective = AllGather(num_ranks, chunk_factor=1, in_place=True)
    label = name or f"bruck_allgather_{num_ranks}_r{instances}"
    with MSCCLProgram(label, collective, protocol=protocol,
                      instances=instances) as program:
        # held[r] = list of owner indices rank r currently has.
        held = {rank: [rank] for rank in range(num_ranks)}
        distance = 1
        while distance < num_ranks:
            # How many new blocks this round may add per rank.
            budget = min(distance, num_ranks - len(held[0]))
            transfers = []
            for rank in range(num_ranks):
                source = (rank + distance) % num_ranks
                # The blocks this rank still misses, in the order the
                # source acquired them (owners source, source+1, ...).
                missing = [
                    owner for owner in held[source]
                    if owner not in held[rank]
                ][:budget]
                transfers.append((source, rank, missing))
            for source, rank, missing in transfers:
                for owner in missing:
                    chunk(source, "out", owner).copy(rank, "out", owner)
            for source, rank, missing in transfers:
                held[rank] = held[rank] + missing
            distance <<= 1
    return program
