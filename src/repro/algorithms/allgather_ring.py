"""Standalone Ring AllGather and Ring ReduceScatter programs.

These wrap the Figure 3b helpers as complete collectives (in-place,
addressing the output buffer through the input alias), used directly in
tests and as building blocks for comparisons.
"""

from __future__ import annotations

from ..core.collectives import AllGather, ReduceScatter
from ..core.program import MSCCLProgram, chunk


def ring_allgather(num_ranks: int, *, channels: int = 1,
                   instances: int = 1, protocol: str = "Simple",
                   name: str = None) -> MSCCLProgram:
    """In-place Ring AllGather: rank r's chunk circles the ring."""
    collective = AllGather(num_ranks, chunk_factor=1, in_place=True)
    label = name or f"ring_allgather_ch{channels}_r{instances}"
    with MSCCLProgram(label, collective, protocol=protocol,
                      instances=instances) as program:
        for owner in range(num_ranks):
            ch = owner % channels
            c = chunk(owner, "in", 0)  # aliases output[owner]
            for step in range(num_ranks - 1):
                nxt = (owner + 1 + step) % num_ranks
                c = c.copy(nxt, "out", owner, ch=ch)
    return program


def ring_reducescatter(num_ranks: int, *, channels: int = 1,
                       instances: int = 1, protocol: str = "Simple",
                       name: str = None) -> MSCCLProgram:
    """In-place Ring ReduceScatter: rank r keeps reduced segment r."""
    collective = ReduceScatter(num_ranks, chunk_factor=1, in_place=True)
    label = name or f"ring_reducescatter_ch{channels}_r{instances}"
    with MSCCLProgram(label, collective, protocol=protocol,
                      instances=instances) as program:
        for index in range(num_ranks):
            ch = index % channels
            c = chunk((index + 1) % num_ranks, "in", index)
            for step in range(1, num_ranks):
                nxt = (index + 1 + step) % num_ranks
                c = chunk(nxt, "in", index).reduce(c, ch=ch)
    return program
