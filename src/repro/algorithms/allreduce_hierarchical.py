"""Hierarchical AllReduce — the paper's running example (section 2).

Four phases over N nodes with G GPUs each and N*G chunks:

1. intra-node Ring ReduceScatter   (channel 0, optionally parallelized)
2. inter-node Ring ReduceScatter   (channel 1)
3. inter-node Ring AllGather       (channel 1)
4. intra-node Ring AllGather       (channel 2, optionally parallelized)

Aggregation: the intra-node phases move N chunks per step (the
multi-count references of Figure 3), amortizing per-send startup cost.
"""

from __future__ import annotations

from ..core.collectives import AllReduce
from ..core.directives import parallelize
from ..core.program import MSCCLProgram
from .common import ring_all_gather, ring_reduce_scatter


def hierarchical_allreduce(num_nodes: int, gpus_per_node: int, *,
                           instances: int = 1, protocol: str = "Simple",
                           intra_parallel: int = 1,
                           name: str = None) -> MSCCLProgram:
    """Build the hierarchical AllReduce of paper Figure 3.

    ``intra_parallel`` applies ``parallelize(...)`` to the intra-node
    phases (the paper uses N); ``instances`` is the whole-program factor.
    """
    n, g = num_nodes, gpus_per_node
    num_ranks = n * g
    collective = AllReduce(num_ranks, chunk_factor=num_ranks, in_place=True)
    label = name or (
        f"hierarchical_allreduce_{n}x{g}_r{instances}_{protocol.lower()}"
    )
    with MSCCLProgram(label, collective, gpus_per_node=g,
                      protocol=protocol, instances=instances) as program:
        # Phase 1: intra-node ReduceScatter (aggregated N-chunk sends).
        for node in range(n):
            local_ranks = [node * g + i for i in range(g)]
            if intra_parallel > 1:
                with parallelize(intra_parallel):
                    ring_reduce_scatter(local_ranks, 0, n, ch=0)
            else:
                ring_reduce_scatter(local_ranks, 0, n, ch=0)

        # Phases 2+3: inter-node ReduceScatter then AllGather among the
        # GPUs with the same intra-node index.
        for gpu in range(g):
            cross_ranks = [i * g + gpu for i in range(n)]
            ring_reduce_scatter(cross_ranks, gpu * n, 1, ch=1)
            ring_all_gather(cross_ranks, gpu * n, 1, ch=1)

        # Phase 4: intra-node AllGather.
        for node in range(n):
            local_ranks = [node * g + i for i in range(g)]
            if intra_parallel > 1:
                with parallelize(intra_parallel):
                    ring_all_gather(local_ranks, 0, n, ch=2)
            else:
                ring_all_gather(local_ranks, 0, n, ch=2)
    return program
