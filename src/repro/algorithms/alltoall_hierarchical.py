"""Three-step hierarchical AllToAll.

A refinement of the Two-Step algorithm for very large node counts: the
Two-Step still sends one InfiniBand message per (staging GPU,
destination node) pair. The hierarchical variant routes *all* of a node
pair's traffic through a single (source GPU, destination GPU) rail —
GPU g of node m talks only to GPU g of node n — in three steps:

1. intra-node: chunks headed for node ``n`` gather on the local rail
   GPU for ``n`` (index ``n mod G``),
2. inter-node: one large rail transfer per node pair per rail,
3. intra-node: the landed chunks scatter to their final GPUs.

This trades more NVLink hops for maximal IB aggregation: per GPU only
``(N-1)/G``-ish cross-node messages instead of ``N-1``.
"""

from __future__ import annotations

from typing import Optional

from ..core.collectives import AllToAll
from ..core.program import MSCCLProgram, chunk


def hierarchical_alltoall(num_nodes: int, gpus_per_node: int, *,
                          instances: int = 1, protocol: str = "Simple",
                          name: Optional[str] = None) -> MSCCLProgram:
    """Build the three-step rail-aligned AllToAll."""
    n, g = num_nodes, gpus_per_node
    num_ranks = n * g
    collective = AllToAll(num_ranks, chunk_factor=1)
    label = name or (
        f"hier_alltoall_{n}x{g}_r{instances}_{protocol.lower()}"
    )
    with MSCCLProgram(label, collective, gpus_per_node=g,
                      protocol=protocol, instances=instances) as program:
        for dst_node in range(n):
            rail = dst_node % g  # the local GPU owning traffic to dst_node
            for src_node in range(n):
                if src_node == dst_node:
                    # Intra-node traffic: direct copies.
                    for src_gpu in range(g):
                        for dst_gpu in range(g):
                            c = chunk((src_node, src_gpu), "in",
                                      (dst_node, dst_gpu))
                            c.copy((dst_node, dst_gpu), "out",
                                   (src_node, src_gpu))
                    continue
                # Step 1: gather the node's G*G chunks for dst_node onto
                # the rail GPU, laid out [src_gpu * G + dst_gpu].
                for src_gpu in range(g):
                    for dst_gpu in range(g):
                        c = chunk((src_node, src_gpu), "in",
                                  (dst_node, dst_gpu))
                        slot = src_gpu * g + dst_gpu
                        c.copy((src_node, rail), "sc",
                               dst_node * g * g + slot)
                # Step 2: one aggregated rail transfer for the node pair.
                staged = chunk((src_node, rail), "sc",
                               dst_node * g * g, count=g * g)
                staged.copy((dst_node, rail), "sc",
                            src_node * g * g)
                # Step 3: scatter landed chunks to their destinations.
                for dst_gpu in range(g):
                    for src_gpu in range(g):
                        slot = src_gpu * g + dst_gpu
                        landed = chunk((dst_node, rail), "sc",
                                       src_node * g * g + slot)
                        landed.copy((dst_node, dst_gpu), "out",
                                    (src_node, src_gpu))
    return program
