"""AllToNext — the paper's custom collective (section 7.4, Figure 10).

GPU ``i`` sends its buffer to GPU ``i+1`` (the last sends nothing).
Within a node that is a direct NVLink copy; *across* a node boundary the
sending GPU scatters its buffer over helper GPUs of its node, each
forwards its shard over its own InfiniBand NIC, and the shards gather on
the destination GPU — using every NIC in the node instead of one.

``helpers`` controls the scatter width; it defaults to the GPU count and
should match the node's NIC count (scattering wider than the NICs only
adds hops — on a DGX-2, 8 helpers cover all 8 NICs).
"""

from __future__ import annotations

from typing import Optional

from ..core.collectives import AllToNext
from ..core.errors import ProgramError
from ..core.program import MSCCLProgram, chunk


def alltonext(num_nodes: int, gpus_per_node: int, *,
              instances: int = 1, protocol: str = "Simple",
              helpers: Optional[int] = None,
              name: str = None) -> MSCCLProgram:
    """Build the NIC-parallel AllToNext algorithm of Figure 10."""
    n, g = num_nodes, gpus_per_node
    num_ranks = n * g
    shards = helpers or g
    if not 1 <= shards <= g:
        raise ProgramError(
            f"helpers ({shards}) must be between 1 and gpus_per_node ({g})"
        )
    collective = AllToNext(num_ranks, chunk_factor=shards)
    label = name or f"alltonext_{n}x{g}_r{instances}_{protocol.lower()}"
    with MSCCLProgram(label, collective, gpus_per_node=g,
                      protocol=protocol, instances=instances) as program:
        for rank in range(num_ranks - 1):
            nxt = rank + 1
            src = chunk(rank, "in", 0, count=shards)
            if rank // g == nxt // g:
                # Same node: one direct NVLink copy of the whole buffer.
                src.copy(nxt, "out", 0)
                continue
            # Node boundary: scatter across helper GPUs, forward one
            # shard per NIC, gather on the destination.
            node_base = (rank // g) * g
            next_base = (nxt // g) * g
            for shard in range(shards):
                piece = chunk(rank, "in", shard)
                helper = node_base + shard
                if helper != rank:
                    piece = piece.copy(helper, "sc", 0)
                landed = piece.copy(next_base + shard, "sc", 1)
                landed.copy(nxt, "out", shard)
    return program


def naive_alltonext(num_nodes: int, gpus_per_node: int, *,
                    instances: int = 1, protocol: str = "Simple",
                    helpers: Optional[int] = None,
                    name: str = None) -> MSCCLProgram:
    """The baseline: every GPU sends its whole buffer directly to the
    next GPU, so each node-boundary hop uses a single NIC.

    ``helpers`` only sets the chunk count so buffers are comparable with
    the optimized program.
    """
    n, g = num_nodes, gpus_per_node
    num_ranks = n * g
    shards = helpers or g
    collective = AllToNext(num_ranks, chunk_factor=shards)
    label = name or f"naive_alltonext_{n}x{g}_r{instances}"
    with MSCCLProgram(label, collective, gpus_per_node=g,
                      protocol=protocol, instances=instances) as program:
        for rank in range(num_ranks - 1):
            chunk(rank, "in", 0, count=shards).copy(rank + 1, "out", 0)
    return program
