"""Ring AllReduce (paper section 7.1.1).

A ring over R ranks divides each buffer into R chunks; every chunk
traverses the ring twice (reduce pass, then copy pass). The MSCCLang
twist the paper evaluates is *distributing one logical ring across
multiple channels* — operations for chunk ``c`` run on channel
``c % channels`` — so different chunks' sends overlap, plus whole-
program chunk parallelization (``instances``).
"""

from __future__ import annotations

from ..core.collectives import AllReduce
from ..core.program import MSCCLProgram, chunk


def ring_allreduce(num_ranks: int, *, channels: int = 1,
                   instances: int = 1, protocol: str = "Simple",
                   chunks_per_rank: int = None, in_place: bool = True,
                   reduce_op: str = "sum",
                   name: str = None) -> MSCCLProgram:
    """Build (trace) a Ring AllReduce program.

    ``channels`` is the paper's ``ch`` parameter: the logical ring is
    striped over this many channels. ``instances`` is ``r``, the whole-
    program parallelization factor. Out of place (``in_place=False``,
    NCCL's default calling convention), every rank first copies its
    input into the output buffer locally and the ring runs over the
    outputs, leaving the inputs untouched.
    """
    chunks = chunks_per_rank or num_ranks
    if chunks % num_ranks != 0:
        raise ValueError(
            f"chunks_per_rank ({chunks}) must be a multiple of the rank "
            f"count ({num_ranks})"
        )
    collective = AllReduce(num_ranks, chunk_factor=chunks,
                           in_place=in_place, reduce_op=reduce_op)
    label = name or (
        f"ring_allreduce_ch{channels}_r{instances}_{protocol.lower()}"
    )
    per_rank = chunks // num_ranks
    buffer = "in" if in_place else "out"
    with MSCCLProgram(label, collective, protocol=protocol,
                      instances=instances) as program:
        if not in_place:
            for rank in range(num_ranks):
                chunk(rank, "in", 0, count=chunks).copy(
                    rank, "out", 0
                )
        for index in range(chunks):
            owner = index // per_rank
            ch = index % channels
            # Reduce pass: the chunk circles the ring accumulating.
            c = chunk((owner + 1) % num_ranks, buffer, index)
            for step in range(1, num_ranks):
                nxt = (owner + 1 + step) % num_ranks
                c = chunk(nxt, buffer, index).reduce(c, ch=ch)
            # Copy pass: the total circles the ring once more.
            for step in range(num_ranks - 1):
                nxt = (owner + 1 + step) % num_ranks
                c = c.copy(nxt, buffer, index, ch=ch)
    return program
