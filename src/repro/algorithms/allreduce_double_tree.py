"""Double binary tree AllReduce (NCCL's Tree algorithm, done fully).

A single binary tree leaves half the ranks as leaves that only inject
data, wasting their send bandwidth during the reduce phase. NCCL's
trick: build two complementary trees, so each rank is interior in one
tree and a leaf in the other, and split the buffer between them.
Reduce flows up each tree to its root, then broadcast flows back down;
with both trees working on half the data each, every link stays busy.
Here the second tree is the mirror of the first (rank R-1-p at
position p), which makes the first tree's leaves interior in the
second.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..core.collectives import AllReduce
from ..core.program import MSCCLProgram, chunk


def _tree_positions(num_ranks: int, tree: int) -> List[int]:
    """Rank occupying each tree position.

    Tree 0 is the identity layout; tree 1 is its mirror (rank R-1-p at
    position p), which makes tree 0's leaves tree 1's interior nodes —
    NCCL's complementary-tree construction.
    """
    if tree == 0:
        return list(range(num_ranks))
    return [num_ranks - 1 - p for p in range(num_ranks)]


def _children_of(position: int, num_ranks: int) -> List[int]:
    kids = [2 * position + 1, 2 * position + 2]
    return [k for k in kids if k < num_ranks]


def double_binary_tree_allreduce(
        num_ranks: int, *, instances: int = 1, protocol: str = "LL128",
        chunk_factor: int = 2,
        name: Optional[str] = None) -> MSCCLProgram:
    """Build the double-tree AllReduce.

    ``chunk_factor`` must be even: the low half of the chunks reduces
    over tree 0, the high half over tree 1 (shifted by one rank).
    """
    if chunk_factor % 2:
        raise ValueError("chunk_factor must be even (one half per tree)")
    collective = AllReduce(num_ranks, chunk_factor=chunk_factor,
                           in_place=True)
    label = name or (
        f"double_tree_allreduce_{num_ranks}_r{instances}"
        f"_{protocol.lower()}"
    )
    half = chunk_factor // 2
    with MSCCLProgram(label, collective, protocol=protocol,
                      instances=instances) as program:
        for tree, channel in ((0, 0), (1, 1)):
            order = _tree_positions(num_ranks, tree)
            indices = range(tree * half, tree * half + half)
            for index in indices:
                # Reduce up: deepest positions first.
                for position in reversed(range(num_ranks)):
                    rank = order[position]
                    for child_pos in _children_of(position, num_ranks):
                        child = order[child_pos]
                        acc = chunk(rank, "in", index)
                        acc.reduce(chunk(child, "in", index), ch=channel)
                # Broadcast down: pre-order from the root.
                for position in range(num_ranks):
                    rank = order[position]
                    for child_pos in _children_of(position, num_ranks):
                        child = order[child_pos]
                        chunk(rank, "in", index).copy(
                            child, "in", index, ch=channel
                        )
    return program


def tree_structure(num_ranks: int) -> Dict[int, Dict[str, List[int]]]:
    """Diagnostic: per-rank roles in both trees (for tests/inspection).

    Returns rank -> {"tree0": children, "tree1": children}.
    """
    roles: Dict[int, Dict[str, List[int]]] = {
        rank: {"tree0": [], "tree1": []} for rank in range(num_ranks)
    }
    for tree in (0, 1):
        order = _tree_positions(num_ranks, tree)
        for position in range(num_ranks):
            rank = order[position]
            roles[rank][f"tree{tree}"] = [
                order[k] for k in _children_of(position, num_ranks)
            ]
    return roles
