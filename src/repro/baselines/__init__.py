"""Cost models of the paper's hand-written comparison implementations."""

from .cuda_p2p_next import CudaAllToNext
from .cuda_twostep import CudaTwoStepAllToAll
from .multikernel import extra_kernel_cost, simulate_phases
from .nccl_composed import ComposedHierarchicalAllReduce
from .sccl_runtime import SCCL_DIRECT, ScclRuntimeAllGather

__all__ = [
    "ComposedHierarchicalAllReduce",
    "CudaAllToNext",
    "CudaTwoStepAllToAll",
    "SCCL_DIRECT",
    "ScclRuntimeAllGather",
    "extra_kernel_cost",
    "simulate_phases",
]
