"""Hierarchical AllReduce composed from NCCL collective calls (Fig. 8c).

The red line in the paper's Figure 8c: the same four-phase algorithm,
but each phase is a separate NCCL collective on a sub-communicator.
Every phase pays a kernel launch, and the phases cannot pipeline — a
tile cannot enter the inter-node ReduceScatter until the *entire*
intra-node ReduceScatter kernel finishes (the top half of Figure 6).
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from ..core.compiler import CompilerOptions, compile_program
from ..core.ir import MscclIr
from ..runtime.simulator import IrSimulator, SimConfig
from ..topology.model import MachineSpec, Topology
from ..topology.presets import generic
from ..algorithms.allgather_ring import ring_allgather, ring_reducescatter
from ..nccl.ring import select_protocol


# Host-side cost of synchronizing a stream between dependent collective
# calls (the next phase cannot launch until every rank finished the
# previous one).
INTER_PHASE_SYNC_US = 12.0


class ComposedHierarchicalAllReduce:
    """Four sequential NCCL kernels: RS(intra), RS(inter), AG(inter),
    AG(intra)."""

    def __init__(self, topology: Topology):
        self.topology = topology
        self._cache: Dict[tuple, Tuple[MscclIr, Topology]] = {}

    def _phase(self, kind: str, ranks: int, protocol: str,
               cross_node: bool) -> Tuple[MscclIr, Topology]:
        key = (kind, ranks, protocol, cross_node)
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        machine = self.topology.machine
        builder = (ring_reducescatter if kind == "rs" else ring_allgather)
        program = builder(ranks, channels=1, instances=8,
                          protocol=protocol)
        ir = compile_program(
            program, CompilerOptions(max_threadblocks=machine.sm_count)
        )
        if cross_node:
            # One GPU per node: the ring hops over InfiniBand. On
            # machines where GPU pairs share a NIC, halve its bandwidth
            # to reflect the G concurrent sub-communicators contending.
            ib = machine.ib_bandwidth / machine.gpus_per_nic
            phase_topology = generic(1, ranks, ib_bandwidth=ib)
        else:
            phase_topology = generic(
                ranks, 1, nvlink_bandwidth=machine.nvlink_bandwidth
            )
        self._cache[key] = (ir, phase_topology)
        return ir, phase_topology

    def time_us(self, buffer_bytes: float) -> float:
        """Latency for a per-GPU buffer of ``buffer_bytes``."""
        n = self.topology.num_nodes
        g = self.topology.machine.gpus_per_node
        protocol = select_protocol(buffer_bytes)
        total = 0.0
        phases = [
            ("rs", g, False, buffer_bytes / g),
            ("rs", n, True, buffer_bytes / (g * n)),
            ("ag", n, True, buffer_bytes / (g * n)),
            ("ag", g, False, buffer_bytes / g),
        ]
        executed = 0
        for kind, ranks, cross, chunk_bytes in phases:
            if ranks < 2:
                continue
            ir, phase_topology = self._phase(kind, ranks, protocol, cross)
            sim = IrSimulator(ir, phase_topology, config=SimConfig())
            total += sim.run(chunk_bytes=chunk_bytes).time_us
            executed += 1
        if executed > 1:
            total += INTER_PHASE_SYNC_US * (executed - 1)
        return total
