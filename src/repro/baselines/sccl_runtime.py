"""The SCCL runtime cost model (paper section 7.5, Figure 11).

SCCL [Cai et al.] executes its synthesized algorithms with its own
point-to-point protocol: a *direct copy* from source to destination
buffer, with no intermediate FIFO slots. Compared with MSCCLang's
NCCL-derived protocols this has a smaller memory footprint — no
receiver consume pass and no per-slot handover — so it beats MSCCLang's
Simple protocol at middle sizes, while MSCCLang LL still wins small
sizes on latency. We model it as a protocol with one giant slot (no
tiling, hence no pipelining either) plus the simulator's ``direct_copy``
mode.
"""

from __future__ import annotations

from typing import Optional

from ..core.compiler import CompilerOptions, compile_program
from ..core.ir import MscclIr
from ..runtime.protocols import Protocol
from ..runtime.simulator import IrSimulator, SimConfig
from ..topology.model import Topology
from ..algorithms.allgather_sccl import sccl_allgather_122

SCCL_DIRECT = Protocol(
    name="SCCL-direct",
    slot_bytes=1 << 40,  # effectively unbounded: whole chunks, no tiling
    num_slots=1,
    bandwidth_efficiency=1.0,
    alpha_overhead=1.0,
)


class ScclRuntimeAllGather:
    """Simulated SCCL execution of the (1,2,2) AllGather."""

    def __init__(self, topology: Topology):
        self.topology = topology
        self._ir: Optional[MscclIr] = None

    def _compiled(self) -> MscclIr:
        if self._ir is None:
            program = sccl_allgather_122(
                self.topology.num_ranks,
                instances=1,
                protocol="Simple",  # protocol is overridden at run time
                name="sccl_allgather_122_native",
            )
            self._ir = compile_program(
                program,
                CompilerOptions(
                    max_threadblocks=self.topology.machine.sm_count,
                    num_slots=1,
                ),
            )
        return self._ir

    def time_us(self, buffer_bytes: float) -> float:
        """Latency for an output buffer of ``buffer_bytes``."""
        chunk_bytes = buffer_bytes / self.topology.num_ranks
        sim = IrSimulator(
            self._compiled(), self.topology, protocol=SCCL_DIRECT,
            config=SimConfig(direct_copy=True, max_tiles=1),
        )
        return sim.run(chunk_bytes=chunk_bytes).time_us
