"""The hand-optimized CUDA Two-Step AllToAll baseline (section 7.3).

The paper's comparison kernel implements the same Two-Step algorithm
with NCCL point-to-point primitives. Relative to the MSCCLang version
it (a) needs a separate kernel that contiguously rearranges chunks in
scratch before the aggregated IB send (extra launch + a full pass over
the staged data + a synchronization), and (b) lacks the compiler's
multi-thread-block schedule, so it runs unparallelized without tile
pipelining across the two steps.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..core.compiler import CompilerOptions, compile_program
from ..core.ir import MscclIr
from ..runtime.simulator import IrSimulator, SimConfig
from ..topology.model import Topology
from ..algorithms.alltoall_twostep import twostep_alltoall
from .multikernel import extra_kernel_cost


class CudaTwoStepAllToAll:
    """Cost model of the hand-written Two-Step kernel."""

    def __init__(self, topology: Topology, *, protocol: str = "Simple"):
        self.topology = topology
        self.protocol = protocol
        self._ir: Optional[MscclIr] = None

    def _compiled(self) -> MscclIr:
        if self._ir is None:
            machine = self.topology.machine
            program = twostep_alltoall(
                self.topology.num_nodes,
                machine.gpus_per_node,
                instances=1,
                protocol=self.protocol,
                name="cuda_twostep_alltoall",
            )
            self._ir = compile_program(
                program,
                CompilerOptions(max_threadblocks=machine.sm_count),
            )
        return self._ir

    def time_us(self, buffer_bytes: float) -> float:
        """Latency for a per-GPU buffer of ``buffer_bytes``."""
        num_ranks = self.topology.num_ranks
        chunk_bytes = buffer_bytes / num_ranks
        # No tile pipelining across the separate kernels.
        sim = IrSimulator(
            self._compiled(), self.topology,
            config=SimConfig(max_tiles=1),
        )
        comm = sim.run(chunk_bytes=chunk_bytes).time_us
        # The rearrangement kernel touches every cross-node chunk staged
        # on this GPU: (N-1)/N of the buffer.
        n = self.topology.num_nodes
        staged = buffer_bytes * (n - 1) / max(n, 1)
        return comm + extra_kernel_cost(self.topology, staged)
