"""Helpers for modeling multi-kernel (composed) implementations.

The paper repeatedly attributes baseline slowness to composing several
kernel launches: each launch pays overhead, and nothing pipelines across
the launch boundary. These helpers price such compositions by summing
independently simulated phases plus per-launch cost.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..core.ir import MscclIr
from ..runtime.simulator import IrSimulator, SimConfig, SimResult
from ..topology.model import Topology


@dataclass
class PhaseResult:
    """One phase (kernel) of a composed implementation."""

    label: str
    result: SimResult


def simulate_phases(phases: List, topology: Topology,
                    sim_config: Optional[SimConfig] = None) -> float:
    """Total time (us) of sequential kernels.

    ``phases`` is a list of (label, ir, chunk_bytes) or (label, cost_us)
    entries; IR phases are simulated (each including its own kernel
    launch overhead), fixed-cost phases are added as-is.
    """
    config = sim_config or SimConfig()
    total = 0.0
    for phase in phases:
        if len(phase) == 2:
            _label, cost = phase
            total += cost
            continue
        _label, ir, chunk_bytes = phase
        sim = IrSimulator(ir, topology, config=config)
        total += sim.run(chunk_bytes=chunk_bytes).time_us
    return total


def extra_kernel_cost(topology: Topology, bytes_touched: float,
                      memcpy_bandwidth_gbps: float = 900.0) -> float:
    """Cost (us) of an auxiliary rearrangement kernel.

    A launch plus one pass over ``bytes_touched`` at device memcpy
    bandwidth — the paper's "separate kernel that copies and
    contiguously arranges chunks in a scratch buffer".
    """
    copy_us = bytes_touched / (memcpy_bandwidth_gbps * 1e3)
    return topology.machine.kernel_launch_overhead + copy_us
