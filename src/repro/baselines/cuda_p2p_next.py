"""The CUDA point-to-point AllToNext baseline (section 7.4).

"Each GPU directly sends its entire buffer to the next GPU using NCCL's
send and receive primitives": one unparallelized transfer per hop, so a
node-boundary hop uses exactly one InfiniBand NIC.
"""

from __future__ import annotations

from typing import Optional

from ..core.compiler import CompilerOptions, compile_program
from ..core.ir import MscclIr
from ..runtime.simulator import IrSimulator, SimConfig
from ..topology.model import Topology
from ..algorithms.alltonext import naive_alltonext


class CudaAllToNext:
    """Cost model of the direct-send AllToNext kernel."""

    def __init__(self, topology: Topology, *, protocol: str = "Simple"):
        self.topology = topology
        self.protocol = protocol
        self._ir: Optional[MscclIr] = None

    def _compiled(self) -> MscclIr:
        if self._ir is None:
            machine = self.topology.machine
            program = naive_alltonext(
                self.topology.num_nodes,
                machine.gpus_per_node,
                instances=1,
                protocol=self.protocol,
                name="cuda_p2p_alltonext",
            )
            self._ir = compile_program(
                program,
                CompilerOptions(max_threadblocks=machine.sm_count),
            )
        return self._ir

    def time_us(self, buffer_bytes: float) -> float:
        """Latency for a per-GPU buffer of ``buffer_bytes``."""
        ir = self._compiled()
        chunk_bytes = buffer_bytes / ir.gpus[0].input_chunks
        sim = IrSimulator(ir, self.topology, config=SimConfig())
        return sim.run(chunk_bytes=chunk_bytes).time_us
